//! [`ProcessExecutor`]: fan experiment runs across worker *subprocesses*.
//!
//! Each worker is an `nni-worker` binary speaking the frame protocol of
//! [`crate::proto`] over stdin/stdout: the parent sends serialized
//! [`Scenario`]s, the worker emulates and ships the [`SimReport`] back, and
//! the parent re-derives outcomes and measurement sets exactly as the
//! in-process executors do ([`Experiment::outcome_from`] /
//! [`Experiment::package`]). Reports land in per-index slots, so results
//! are deterministic and input-ordered — the bit-identity contract of
//! [`SerialExecutor`](crate::SerialExecutor) and
//! [`ShardedExecutor`](crate::ShardedExecutor) generalizes unchanged to a
//! three-way serial/sharded/process gate.
//!
//! Crash handling: a worker that dies mid-job (I/O error, EOF before the
//! result frame) is killed, respawned, and the job requeued with a bounded
//! attempt budget; bytes that arrive but fail to *decode* are never
//! retried — rerunning cannot fix a corrupted stream, so the batch fails
//! with the typed [`ProcessError::Codec`].

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use nni_emu::SimReport;
use nni_measure::codec::CodecError;
use nni_measure::wire::FrameError;
use nni_measure::MeasurementSet;

use crate::executor::Executor;
use crate::experiment::{Experiment, ExperimentOutcome};
use crate::proto::{read_result, write_job};
use crate::spec::Scenario;

/// Environment variable overriding the worker binary path (how tests and
/// the daemon point an executor at a specific build).
pub const WORKER_BIN_ENV: &str = "NNI_WORKER_BIN";

/// Default number of times one job may be attempted before the batch fails.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Where the worker binary lives when no override is given: next to the
/// current executable (stepping out of cargo's `deps/` directory when the
/// caller is a test binary).
pub fn default_worker_bin() -> PathBuf {
    if let Some(p) = std::env::var_os(WORKER_BIN_ENV) {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().unwrap_or_default();
    let mut dir = exe.parent().unwrap_or_else(|| Path::new(".")).to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    dir.join(format!("nni-worker{}", std::env::consts::EXE_SUFFIX))
}

/// Why a process-pool batch failed.
#[derive(Debug)]
pub enum ProcessError {
    /// The worker binary could not be spawned at all.
    Spawn {
        /// The binary the pool tried to run.
        bin: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// One job exhausted its attempt budget across worker crashes.
    JobFailed {
        /// Input index of the job.
        job: usize,
        /// Attempts consumed.
        attempts: u32,
        /// Description of the final failure.
        last: String,
    },
    /// A worker's bytes arrived but did not decode — not retriable.
    Codec {
        /// Input index of the job.
        job: usize,
        /// The decode failure.
        error: CodecError,
    },
    /// A worker answered with the wrong job id — a protocol violation.
    Mismatch {
        /// The job the parent sent.
        job: usize,
        /// The id the worker answered with.
        got: u64,
    },
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::Spawn { bin, error } => {
                write!(f, "failed to spawn worker {}: {error}", bin.display())
            }
            ProcessError::JobFailed {
                job,
                attempts,
                last,
            } => write!(f, "job {job} failed after {attempts} attempts: {last}"),
            ProcessError::Codec { job, error } => {
                write!(f, "job {job}: worker result failed to decode: {error}")
            }
            ProcessError::Mismatch { job, got } => {
                write!(f, "job {job}: worker answered for job {got}")
            }
        }
    }
}

impl std::error::Error for ProcessError {}

/// What a batch cost beyond the results: how often workers died and jobs
/// were retried — the observability hook the crash-injection tests assert
/// on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Worker processes respawned after a crash.
    pub respawns: usize,
    /// Jobs requeued after a worker crash.
    pub retries: usize,
}

/// Fans experiment batches across `nni-worker` subprocesses.
#[derive(Debug, Clone)]
pub struct ProcessExecutor {
    workers: usize,
    worker_bin: PathBuf,
    max_attempts: u32,
}

impl ProcessExecutor {
    /// A pool of `workers` subprocesses (at least one) running the
    /// [`default_worker_bin`].
    pub fn new(workers: usize) -> ProcessExecutor {
        ProcessExecutor {
            workers: workers.max(1),
            worker_bin: default_worker_bin(),
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }

    /// Same pool, explicit worker binary.
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> ProcessExecutor {
        self.worker_bin = bin.into();
        self
    }

    /// Same pool, explicit per-job attempt budget (at least one).
    pub fn with_max_attempts(mut self, attempts: u32) -> ProcessExecutor {
        self.max_attempts = attempts.max(1);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker binary the pool spawns.
    pub fn worker_bin(&self) -> &Path {
        &self.worker_bin
    }

    /// Runs every scenario on the pool, returning reports in input order
    /// plus the crash/retry statistics — the primitive both executor entry
    /// points and the experiment daemon build on.
    pub fn try_reports(
        &self,
        scenarios: &[&Scenario],
    ) -> Result<(Vec<SimReport>, ProcessStats), ProcessError> {
        let n = scenarios.len();
        if n == 0 {
            return Ok((Vec::new(), ProcessStats::default()));
        }
        let workers = self.workers.min(n);
        let queue: Mutex<VecDeque<(usize, u32)>> = Mutex::new((0..n).map(|i| (i, 1)).collect());
        let slots: Vec<Mutex<Option<SimReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let failure: Mutex<Option<ProcessError>> = Mutex::new(None);
        let respawns = AtomicUsize::new(0);
        let retries = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut worker: Option<Worker> = None;
                    loop {
                        if failure.lock().expect("unpoisoned").is_some() {
                            break;
                        }
                        let Some((job, attempt)) = queue.lock().expect("unpoisoned").pop_front()
                        else {
                            break;
                        };
                        if worker.is_none() {
                            match Worker::spawn(&self.worker_bin) {
                                Ok(w) => worker = Some(w),
                                Err(error) => {
                                    fail(
                                        &failure,
                                        ProcessError::Spawn {
                                            bin: self.worker_bin.clone(),
                                            error,
                                        },
                                    );
                                    break;
                                }
                            }
                        }
                        let w = worker.as_mut().expect("just spawned");
                        match w.run_job(job, scenarios[job]) {
                            JobResult::Done(report) => {
                                *slots[job].lock().expect("unpoisoned") = Some(report);
                            }
                            JobResult::WorkerDied(cause) => {
                                // The process is gone (or its stream is):
                                // reap it, count the respawn, and requeue the
                                // job unless its budget is spent.
                                worker.take().expect("had a worker").reap();
                                respawns.fetch_add(1, Ordering::Relaxed);
                                if attempt >= self.max_attempts {
                                    fail(
                                        &failure,
                                        ProcessError::JobFailed {
                                            job,
                                            attempts: attempt,
                                            last: cause,
                                        },
                                    );
                                    break;
                                }
                                retries.fetch_add(1, Ordering::Relaxed);
                                queue
                                    .lock()
                                    .expect("unpoisoned")
                                    .push_back((job, attempt + 1));
                            }
                            JobResult::Fatal(error) => {
                                fail(&failure, error);
                                break;
                            }
                        }
                    }
                    if let Some(w) = worker {
                        w.shutdown();
                    }
                });
            }
        });

        if let Some(error) = failure.into_inner().expect("unpoisoned") {
            return Err(error);
        }
        let reports = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned slot")
                    .expect("every job completed or the batch failed")
            })
            .collect();
        Ok((
            reports,
            ProcessStats {
                respawns: respawns.into_inner(),
                retries: retries.into_inner(),
            },
        ))
    }

    /// [`Executor::execute`] with the error surfaced instead of panicking,
    /// plus the batch statistics.
    pub fn try_execute(
        &self,
        experiments: &[Experiment],
    ) -> Result<(Vec<ExperimentOutcome>, ProcessStats), ProcessError> {
        let scenarios: Vec<&Scenario> = experiments.iter().map(Experiment::scenario).collect();
        let (reports, stats) = self.try_reports(&scenarios)?;
        let outcomes = experiments
            .iter()
            .zip(reports)
            .map(|(exp, report)| exp.outcome_from(report))
            .collect();
        Ok((outcomes, stats))
    }

    /// [`Executor::acquire`] with the error surfaced instead of panicking,
    /// plus the batch statistics.
    pub fn try_acquire(
        &self,
        experiments: &[Experiment],
    ) -> Result<(Vec<MeasurementSet>, ProcessStats), ProcessError> {
        let scenarios: Vec<&Scenario> = experiments.iter().map(Experiment::scenario).collect();
        let (reports, stats) = self.try_reports(&scenarios)?;
        let sets = experiments
            .iter()
            .zip(reports)
            .map(|(exp, report)| exp.package(report.log))
            .collect();
        Ok((sets, stats))
    }
}

impl Executor for ProcessExecutor {
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome> {
        self.try_execute(experiments)
            .unwrap_or_else(|e| panic!("process executor batch failed: {e}"))
            .0
    }

    fn acquire(&self, experiments: &[Experiment]) -> Vec<MeasurementSet> {
        self.try_acquire(experiments)
            .unwrap_or_else(|e| panic!("process executor batch failed: {e}"))
            .0
    }

    fn describe(&self) -> String {
        format!("process({})", self.workers)
    }
}

fn fail(failure: &Mutex<Option<ProcessError>>, error: ProcessError) {
    let mut slot = failure.lock().expect("unpoisoned");
    if slot.is_none() {
        *slot = Some(error);
    }
}

/// How one job round trip ended.
enum JobResult {
    /// The worker answered.
    Done(SimReport),
    /// The worker (or its stream) died before answering — retriable; the
    /// string describes the failure for the attempt-budget error.
    WorkerDied(String),
    /// A non-retriable protocol failure.
    Fatal(ProcessError),
}

/// One live worker subprocess with its pipe handles.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: ChildStdout,
}

impl Worker {
    fn spawn(bin: &Path) -> Result<Worker, std::io::Error> {
        let mut child = Command::new(bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        Ok(Worker {
            child,
            stdin,
            stdout,
        })
    }

    fn run_job(&mut self, job: usize, scenario: &Scenario) -> JobResult {
        if let Err(e) = write_job(&mut self.stdin, job as u64, scenario) {
            // A write failure (EPIPE) means the worker is gone.
            return JobResult::WorkerDied(format!("job write failed: {e}"));
        }
        match read_result(&mut self.stdout) {
            Ok(Some((id, report))) if id == job as u64 => JobResult::Done(report),
            Ok(Some((id, _))) => JobResult::Fatal(ProcessError::Mismatch { job, got: id }),
            // EOF before any result frame: the worker exited under the job.
            Ok(None) => JobResult::WorkerDied("worker exited before answering".into()),
            // A stream dying mid-frame is a crash; other codec errors mean
            // the bytes themselves are bad and retrying cannot help.
            Err(FrameError::Codec(CodecError::UnexpectedEof)) => {
                JobResult::WorkerDied("worker died mid-frame".into())
            }
            Err(FrameError::Io(e)) => JobResult::WorkerDied(format!("result read failed: {e}")),
            Err(FrameError::Codec(error)) => JobResult::Fatal(ProcessError::Codec { job, error }),
        }
    }

    /// Orderly shutdown: close stdin (the worker reads EOF and exits), then
    /// reap.
    fn shutdown(self) {
        let Worker {
            mut child,
            stdin,
            stdout,
        } = self;
        drop(stdin);
        drop(stdout);
        let _ = child.wait();
    }

    /// Post-crash cleanup: make sure the process is gone and reap it.
    fn reap(self) {
        let Worker {
            mut child,
            stdin,
            stdout,
        } = self;
        drop(stdin);
        drop(stdout);
        let _ = child.kill();
        let _ = child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_names_the_strategy_and_floors_workers() {
        assert_eq!(ProcessExecutor::new(3).describe(), "process(3)");
        assert_eq!(ProcessExecutor::new(0).workers(), 1);
    }

    #[test]
    fn builders_override_bin_and_attempts() {
        let exec = ProcessExecutor::new(2)
            .with_worker_bin("/tmp/custom-worker")
            .with_max_attempts(0);
        assert_eq!(exec.worker_bin(), Path::new("/tmp/custom-worker"));
        assert_eq!(exec.max_attempts, 1, "attempt budget floors at one");
    }

    #[test]
    fn empty_batches_spawn_nothing() {
        // A missing binary only matters once there is work.
        let exec = ProcessExecutor::new(2).with_worker_bin("/nonexistent/nni-worker");
        let (reports, stats) = exec.try_reports(&[]).expect("empty batch");
        assert!(reports.is_empty());
        assert_eq!(stats, ProcessStats::default());
        assert!(exec.execute(&[]).is_empty());
    }

    #[test]
    fn missing_worker_binary_is_a_spawn_error() {
        let scenario = crate::library::topology_a_scenario(crate::library::ExperimentParams {
            duration_s: 2.0,
            ..crate::library::ExperimentParams::default()
        });
        let exec = ProcessExecutor::new(1).with_worker_bin("/nonexistent/nni-worker");
        let err = exec.try_reports(&[&scenario]).unwrap_err();
        assert!(matches!(err, ProcessError::Spawn { .. }), "got {err}");
    }
}
