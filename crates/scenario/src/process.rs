//! [`ProcessExecutor`]: fan experiment runs across worker *subprocesses*.
//!
//! Each worker is an `nni-worker` binary speaking the frame protocol of
//! [`crate::proto`] over stdin/stdout: the parent sends serialized
//! [`Scenario`]s, the worker emulates and ships the [`SimReport`] back, and
//! the parent re-derives outcomes and measurement sets exactly as the
//! in-process executors do ([`Experiment::outcome_from`] /
//! [`Experiment::package`]). Reports land in per-index slots, so results
//! are deterministic and input-ordered — the bit-identity contract of
//! [`SerialExecutor`](crate::SerialExecutor) and
//! [`ShardedExecutor`](crate::ShardedExecutor) generalizes unchanged to a
//! three-way serial/sharded/process gate.
//!
//! # Failure semantics
//!
//! Every result is read through a dedicated reader thread, so the parent
//! waits with a *wall-clock job timeout* ([`DEFAULT_JOB_TIMEOUT_MS`],
//! [`ProcessExecutor::with_job_timeout`]): a worker that hangs is killed
//! and counted ([`ProcessStats::timeouts`]), not waited on forever. Each
//! retriable failure is typed ([`WorkerFailure`]) so a clean
//! exit-under-a-job, a hang, a torn frame, and a checksum-corrupt frame
//! are distinguishable in errors and logs. A worker that dies mid-job is
//! killed, respawned (with exponential backoff per consecutive death, so a
//! crash loop cannot spin the host) and the job requeued with a bounded
//! attempt budget. A job that exhausts its budget is **quarantined** into
//! the typed partial [`BatchOutcome`] of [`ProcessExecutor::try_batch`] —
//! the rest of the batch completes; only the strict all-or-nothing entry
//! points ([`try_reports`](ProcessExecutor::try_reports) and the
//! [`Executor`] impl) convert a quarantine into
//! [`ProcessError::JobFailed`]. Bytes that arrive, checksum correctly, but
//! fail to *decode* are never retried — rerunning cannot fix a wrong
//! stream, so the batch fails with the typed [`ProcessError::Codec`]. A
//! checksum mismatch, by contrast, is transport corruption and retriable
//! ([`WorkerFailure::CorruptFrame`]).

use std::collections::VecDeque;
use std::ffi::OsString;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use nni_emu::SimReport;
use nni_measure::codec::CodecError;
use nni_measure::wire::FrameError;
use nni_measure::MeasurementSet;

use crate::executor::Executor;
use crate::experiment::{Experiment, ExperimentOutcome};
use crate::proto::{read_result, write_job};
use crate::spec::Scenario;

/// Environment variable overriding the worker binary path (how tests and
/// the daemon point an executor at a specific build).
pub const WORKER_BIN_ENV: &str = "NNI_WORKER_BIN";

/// Default number of times one job may be attempted before it is
/// quarantined.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Default per-job wall-clock timeout in milliseconds (five minutes —
/// generous next to any emulation in the suite, tight next to forever).
pub const DEFAULT_JOB_TIMEOUT_MS: u64 = 300_000;

/// Default base delay before respawning after a worker death; doubles per
/// consecutive death up to [`DEFAULT_BACKOFF_CAP_MS`].
pub const DEFAULT_BACKOFF_BASE_MS: u64 = 10;

/// Default ceiling of the respawn backoff.
pub const DEFAULT_BACKOFF_CAP_MS: u64 = 1_000;

/// How long the pool waits for a spawned TCP-mode worker to connect back
/// (or for a dial-out connection to a remote worker to establish) before
/// calling the spawn failed.
pub const DEFAULT_CONNECT_TIMEOUT_MS: u64 = 10_000;

/// How the pool reaches its workers. The `NNIWJOB`/`NNIWRES` frame
/// protocol — and every crash/hang/timeout semantic built on it — is
/// byte-identical on all three transports; only the plumbing differs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WorkerTransport {
    /// Frames over the spawned child's stdin/stdout pipes (the default).
    #[default]
    Stdio,
    /// Connect-back TCP over loopback: the pool binds an ephemeral
    /// `127.0.0.1` port per worker, spawns `nni-worker --connect <addr>`,
    /// and accepts exactly that worker's connection. Killing the child
    /// closes its socket, so hang/crash detection carries over unchanged.
    Tcp,
    /// Dial out to already-running `nni-worker --listen` processes —
    /// possibly on other machines. The pool cannot kill a remote worker:
    /// on a hang it drops the connection (the worker's serve loop sees
    /// EOF) and redials. Per-spawn environment (`with_env`) does not
    /// apply; a remote worker's fault plan rides its own environment.
    Remote(Vec<SocketAddr>),
}

/// Where the worker binary lives when no override is given: next to the
/// current executable (stepping out of cargo's `deps/` directory when the
/// caller is a test binary).
pub fn default_worker_bin() -> PathBuf {
    if let Some(p) = std::env::var_os(WORKER_BIN_ENV) {
        return PathBuf::from(p);
    }
    let exe = std::env::current_exe().unwrap_or_default();
    let mut dir = exe.parent().unwrap_or_else(|| Path::new(".")).to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    dir.join(format!("nni-worker{}", std::env::consts::EXE_SUFFIX))
}

/// The last-seen state of a worker when a retriable job attempt failed —
/// the typed payload of [`ProcessError::JobFailed`] and
/// [`Quarantined::last`], distinguishing failure modes that demand
/// different operator responses (a clean EOF is a worker bug or poison
/// job; a hang is an environment problem; torn/corrupt frames point at
/// the transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailure {
    /// The worker exited cleanly (EOF between frames) with the job still
    /// outstanding — a deliberate abort or a worker bug, not a transport
    /// failure.
    CleanEof,
    /// No result arrived within the job timeout; the worker was killed.
    Hang {
        /// The timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// The stream died mid-frame (EOF inside a frame): a crash while
    /// writing the answer.
    TornFrame,
    /// The result frame arrived but its FNV trailer did not match:
    /// transport corruption, retriable on a fresh worker.
    CorruptFrame,
    /// A pipe-level I/O failure (write or read side).
    Io(String),
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerFailure::CleanEof => {
                write!(f, "worker exited cleanly with the job outstanding")
            }
            WorkerFailure::Hang { timeout_ms } => {
                write!(f, "no result within {timeout_ms} ms (worker killed)")
            }
            WorkerFailure::TornFrame => write!(f, "worker died mid-frame"),
            WorkerFailure::CorruptFrame => write!(f, "result frame failed its checksum"),
            WorkerFailure::Io(e) => write!(f, "worker pipe failed: {e}"),
        }
    }
}

/// Why a process-pool batch failed outright (partial completion is not a
/// failure — see [`BatchOutcome`]).
#[derive(Debug)]
pub enum ProcessError {
    /// The worker binary could not be spawned at all.
    Spawn {
        /// The binary the pool tried to run.
        bin: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// One job exhausted its attempt budget (strict entry points only;
    /// [`ProcessExecutor::try_batch`] quarantines instead).
    JobFailed {
        /// Input index of the job.
        job: usize,
        /// Attempts consumed.
        attempts: u32,
        /// The worker's last-seen state.
        last: WorkerFailure,
    },
    /// A worker's bytes arrived and checksummed but did not decode — not
    /// retriable.
    Codec {
        /// Input index of the job.
        job: usize,
        /// The decode failure.
        error: CodecError,
    },
    /// A worker answered with the wrong job id — a protocol violation.
    Mismatch {
        /// The job the parent sent.
        job: usize,
        /// The id the worker answered with.
        got: u64,
    },
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::Spawn { bin, error } => {
                write!(f, "failed to spawn worker {}: {error}", bin.display())
            }
            ProcessError::JobFailed {
                job,
                attempts,
                last,
            } => write!(f, "job {job} failed after {attempts} attempts: {last}"),
            ProcessError::Codec { job, error } => {
                write!(f, "job {job}: worker result failed to decode: {error}")
            }
            ProcessError::Mismatch { job, got } => {
                write!(f, "job {job}: worker answered for job {got}")
            }
        }
    }
}

impl std::error::Error for ProcessError {}

/// What a batch cost beyond the results: how often workers died, hung,
/// and jobs were retried or quarantined — the observability hook the
/// crash-injection and chaos tests assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Worker processes respawned after a death (crash, hang kill, torn
    /// stream).
    pub respawns: usize,
    /// Jobs requeued for another attempt.
    pub retries: usize,
    /// Hung workers killed on job timeout (a subset of `respawns`).
    pub timeouts: usize,
    /// Jobs that exhausted their attempt budget and were quarantined.
    pub quarantined: usize,
}

/// One job that exhausted its attempt budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Input index of the job.
    pub job: usize,
    /// Attempts consumed.
    pub attempts: u32,
    /// The worker's last-seen state on the final attempt.
    pub last: WorkerFailure,
}

/// The typed partial result of [`ProcessExecutor::try_batch`]: every job
/// either has its report (in its input slot) or an entry in
/// [`quarantined`](Self::quarantined) — never both, never neither, no
/// duplicates.
#[derive(Debug, Default)]
pub struct BatchOutcome {
    /// Per-input-index reports; `None` exactly for quarantined jobs.
    pub reports: Vec<Option<SimReport>>,
    /// Jobs that exhausted their budget, sorted by input index.
    pub quarantined: Vec<Quarantined>,
    /// Crash/retry/timeout accounting for the batch.
    pub stats: ProcessStats,
}

impl BatchOutcome {
    /// Whether every job completed.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Strict view: all reports in input order, or the first quarantine as
    /// a [`ProcessError::JobFailed`].
    pub fn into_reports(self) -> Result<(Vec<SimReport>, ProcessStats), ProcessError> {
        if let Some(q) = self.quarantined.into_iter().next() {
            return Err(ProcessError::JobFailed {
                job: q.job,
                attempts: q.attempts,
                last: q.last,
            });
        }
        let reports = self
            .reports
            .into_iter()
            .map(|r| r.expect("no quarantines, so every slot is filled"))
            .collect();
        Ok((reports, self.stats))
    }
}

/// Fans experiment batches across `nni-worker` subprocesses.
#[derive(Debug, Clone)]
pub struct ProcessExecutor {
    workers: usize,
    worker_bin: PathBuf,
    max_attempts: u32,
    job_timeout: Duration,
    backoff_base: Duration,
    backoff_cap: Duration,
    envs: Vec<(OsString, OsString)>,
    transport: WorkerTransport,
    connect_timeout: Duration,
}

impl ProcessExecutor {
    /// A pool of `workers` subprocesses (at least one) running the
    /// [`default_worker_bin`].
    pub fn new(workers: usize) -> ProcessExecutor {
        ProcessExecutor {
            workers: workers.max(1),
            worker_bin: default_worker_bin(),
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            job_timeout: Duration::from_millis(DEFAULT_JOB_TIMEOUT_MS),
            backoff_base: Duration::from_millis(DEFAULT_BACKOFF_BASE_MS),
            backoff_cap: Duration::from_millis(DEFAULT_BACKOFF_CAP_MS),
            envs: Vec::new(),
            transport: WorkerTransport::default(),
            connect_timeout: Duration::from_millis(DEFAULT_CONNECT_TIMEOUT_MS),
        }
    }

    /// Same pool, explicit worker transport (stdio pipes, connect-back
    /// TCP, or dial-out to remote `--listen` workers).
    pub fn with_transport(mut self, transport: WorkerTransport) -> ProcessExecutor {
        if let WorkerTransport::Remote(addrs) = &transport {
            // One connection per pool thread: cap the pool at the number
            // of addresses only if none were given (a misconfiguration
            // that would otherwise spin on an empty modulus).
            assert!(!addrs.is_empty(), "remote transport needs addresses");
        }
        self.transport = transport;
        self
    }

    /// Same pool, explicit connect/accept deadline for socket transports
    /// (floored at one millisecond).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> ProcessExecutor {
        self.connect_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// The configured transport.
    pub fn transport(&self) -> &WorkerTransport {
        &self.transport
    }

    /// Same pool, explicit worker binary.
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> ProcessExecutor {
        self.worker_bin = bin.into();
        self
    }

    /// Same pool, explicit per-job attempt budget (at least one).
    pub fn with_max_attempts(mut self, attempts: u32) -> ProcessExecutor {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Same pool, explicit per-job wall-clock timeout (floored at one
    /// millisecond).
    pub fn with_job_timeout(mut self, timeout: Duration) -> ProcessExecutor {
        self.job_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Same pool, explicit respawn backoff (base delay, doubling per
    /// consecutive death up to `cap`).
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> ProcessExecutor {
        self.backoff_base = base;
        self.backoff_cap = cap.max(base);
        self
    }

    /// Same pool, one extra environment variable set on every spawned
    /// worker — how tests ship a `FaultPlan` to workers without touching
    /// the parent's (process-global) environment.
    pub fn with_env(
        mut self,
        key: impl Into<OsString>,
        value: impl Into<OsString>,
    ) -> ProcessExecutor {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker binary the pool spawns.
    pub fn worker_bin(&self) -> &Path {
        &self.worker_bin
    }

    /// The per-job wall-clock timeout.
    pub fn job_timeout(&self) -> Duration {
        self.job_timeout
    }

    /// Runs every scenario on the pool, quarantining jobs that exhaust
    /// their attempt budget instead of failing the batch — the primitive
    /// the daemon builds on. Errors only on failures retrying cannot
    /// help: spawn, decode, protocol violation.
    pub fn try_batch(&self, scenarios: &[&Scenario]) -> Result<BatchOutcome, ProcessError> {
        let n = scenarios.len();
        if n == 0 {
            return Ok(BatchOutcome::default());
        }
        let workers = self.workers.min(n);
        let queue: Mutex<VecDeque<(usize, u32)>> = Mutex::new((0..n).map(|i| (i, 1)).collect());
        let slots: Vec<Mutex<Option<SimReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let quarantined: Mutex<Vec<Quarantined>> = Mutex::new(Vec::new());
        let failure: Mutex<Option<ProcessError>> = Mutex::new(None);
        let respawns = AtomicUsize::new(0);
        let retries = AtomicUsize::new(0);
        let timeouts = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for widx in 0..workers {
                let (failure, queue, slots, quarantined) = (&failure, &queue, &slots, &quarantined);
                let (respawns, retries, timeouts) = (&respawns, &retries, &timeouts);
                scope.spawn(move || {
                    let mut worker: Option<Worker> = None;
                    // Consecutive deaths seen by this thread; drives the
                    // respawn backoff and resets on a completed job.
                    let mut deaths: u32 = 0;
                    loop {
                        if failure.lock().expect("unpoisoned").is_some() {
                            break;
                        }
                        let Some((job, attempt)) = queue.lock().expect("unpoisoned").pop_front()
                        else {
                            break;
                        };
                        if worker.is_none() {
                            if deaths > 0 {
                                std::thread::sleep(backoff_delay(
                                    self.backoff_base,
                                    self.backoff_cap,
                                    deaths,
                                ));
                            }
                            match Worker::spawn_for(self, widx) {
                                Ok(w) => worker = Some(w),
                                Err(error) => {
                                    fail(
                                        failure,
                                        ProcessError::Spawn {
                                            bin: self.worker_bin.clone(),
                                            error,
                                        },
                                    );
                                    break;
                                }
                            }
                        }
                        let w = worker.as_mut().expect("just spawned");
                        match w.run_job(job, scenarios[job], self.job_timeout) {
                            JobResult::Done(report) => {
                                *slots[job].lock().expect("unpoisoned") = Some(report);
                                deaths = 0;
                            }
                            JobResult::WorkerDied(last) => {
                                // The process is gone (or its stream is, or
                                // it hung past the timeout): reap it, count
                                // the respawn, and requeue the job unless
                                // its budget is spent — then quarantine it
                                // and keep going.
                                worker.take().expect("had a worker").reap();
                                respawns.fetch_add(1, Ordering::Relaxed);
                                deaths += 1;
                                if matches!(last, WorkerFailure::Hang { .. }) {
                                    timeouts.fetch_add(1, Ordering::Relaxed);
                                }
                                if attempt >= self.max_attempts {
                                    quarantined.lock().expect("unpoisoned").push(Quarantined {
                                        job,
                                        attempts: attempt,
                                        last,
                                    });
                                } else {
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    queue
                                        .lock()
                                        .expect("unpoisoned")
                                        .push_back((job, attempt + 1));
                                }
                            }
                            JobResult::Fatal(error) => {
                                fail(failure, error);
                                break;
                            }
                        }
                    }
                    if let Some(w) = worker {
                        w.shutdown();
                    }
                });
            }
        });

        if let Some(error) = failure.into_inner().expect("unpoisoned") {
            return Err(error);
        }
        let mut quarantined = quarantined.into_inner().expect("unpoisoned");
        quarantined.sort_by_key(|q| q.job);
        let reports: Vec<Option<SimReport>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("unpoisoned slot"))
            .collect();
        let stats = ProcessStats {
            respawns: respawns.into_inner(),
            retries: retries.into_inner(),
            timeouts: timeouts.into_inner(),
            quarantined: quarantined.len(),
        };
        debug_assert!(reports
            .iter()
            .enumerate()
            .all(|(i, r)| r.is_some() != quarantined.iter().any(|q| q.job == i)));
        Ok(BatchOutcome {
            reports,
            quarantined,
            stats,
        })
    }

    /// Runs every scenario on the pool, returning reports in input order
    /// plus the crash/retry statistics. Strict: the first quarantined job
    /// fails the whole batch with [`ProcessError::JobFailed`].
    pub fn try_reports(
        &self,
        scenarios: &[&Scenario],
    ) -> Result<(Vec<SimReport>, ProcessStats), ProcessError> {
        self.try_batch(scenarios)?.into_reports()
    }

    /// [`Executor::execute`] with the error surfaced instead of panicking,
    /// plus the batch statistics.
    pub fn try_execute(
        &self,
        experiments: &[Experiment],
    ) -> Result<(Vec<ExperimentOutcome>, ProcessStats), ProcessError> {
        let scenarios: Vec<&Scenario> = experiments.iter().map(Experiment::scenario).collect();
        let (reports, stats) = self.try_reports(&scenarios)?;
        let outcomes = experiments
            .iter()
            .zip(reports)
            .map(|(exp, report)| exp.outcome_from(report))
            .collect();
        Ok((outcomes, stats))
    }

    /// [`Executor::acquire`] with the error surfaced instead of panicking,
    /// plus the batch statistics.
    pub fn try_acquire(
        &self,
        experiments: &[Experiment],
    ) -> Result<(Vec<MeasurementSet>, ProcessStats), ProcessError> {
        let scenarios: Vec<&Scenario> = experiments.iter().map(Experiment::scenario).collect();
        let (reports, stats) = self.try_reports(&scenarios)?;
        let sets = experiments
            .iter()
            .zip(reports)
            .map(|(exp, report)| exp.package(report.log))
            .collect();
        Ok((sets, stats))
    }
}

impl Executor for ProcessExecutor {
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome> {
        self.try_execute(experiments)
            .unwrap_or_else(|e| panic!("process executor batch failed: {e}"))
            .0
    }

    fn acquire(&self, experiments: &[Experiment]) -> Vec<MeasurementSet> {
        self.try_acquire(experiments)
            .unwrap_or_else(|e| panic!("process executor batch failed: {e}"))
            .0
    }

    fn describe(&self) -> String {
        match &self.transport {
            WorkerTransport::Stdio => format!("process({})", self.workers),
            WorkerTransport::Tcp => format!("process_tcp({})", self.workers),
            WorkerTransport::Remote(addrs) => {
                format!("process_remote({}x{})", self.workers, addrs.len())
            }
        }
    }
}

fn fail(failure: &Mutex<Option<ProcessError>>, error: ProcessError) {
    let mut slot = failure.lock().expect("unpoisoned");
    if slot.is_none() {
        *slot = Some(error);
    }
}

/// Exponential backoff: `base << (deaths - 1)` clamped to `cap`.
fn backoff_delay(base: Duration, cap: Duration, deaths: u32) -> Duration {
    let shift = deaths.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << shift).min(cap)
}

/// How one job round trip ended.
enum JobResult {
    /// The worker answered.
    Done(SimReport),
    /// The worker (or its stream) died before answering — retriable, with
    /// its last-seen state for the attempt-budget error.
    WorkerDied(WorkerFailure),
    /// A non-retriable protocol failure.
    Fatal(ProcessError),
}

/// The job-write half of a worker connection: a child's stdin pipe or the
/// write side of a TCP stream.
enum WorkerIo {
    Stdio(ChildStdin),
    Tcp(TcpStream),
}

impl Write for WorkerIo {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            WorkerIo::Stdio(s) => s.write(buf),
            WorkerIo::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            WorkerIo::Stdio(s) => s.flush(),
            WorkerIo::Tcp(s) => s.flush(),
        }
    }
}

impl WorkerIo {
    /// Signals end-of-jobs to the worker. Dropping a `ChildStdin` closes
    /// the pipe, but dropping a cloned `TcpStream` handle does not close
    /// the socket — the read half still holds it — so TCP needs an
    /// explicit write-side shutdown.
    fn close(self) {
        match self {
            WorkerIo::Stdio(stdin) => drop(stdin),
            WorkerIo::Tcp(stream) => {
                let _ = stream.shutdown(Shutdown::Write);
            }
        }
    }

    /// Tears the whole connection down (post-crash/hang cleanup): for a
    /// remote worker this is the only kill the pool has.
    fn sever(self) {
        match self {
            WorkerIo::Stdio(stdin) => drop(stdin),
            WorkerIo::Tcp(stream) => {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// One live worker: a spawned subprocess (stdio or connect-back TCP) or a
/// dialed-out connection to a remote `--listen` worker (no child to
/// manage). Results are pulled by a dedicated reader thread and handed
/// over a channel, so the parent can bound its wait (`recv_timeout`) and
/// kill a hung worker instead of blocking forever.
struct Worker {
    child: Option<Child>,
    io: WorkerIo,
    results: Receiver<ResultMsg>,
    reader: std::thread::JoinHandle<()>,
}

impl Worker {
    /// Spawns (or dials) one worker per the executor's transport. `widx`
    /// picks the remote address round-robin in `Remote` mode.
    fn spawn_for(exec: &ProcessExecutor, widx: usize) -> Result<Worker, std::io::Error> {
        match &exec.transport {
            WorkerTransport::Stdio => Worker::spawn_stdio(&exec.worker_bin, &exec.envs),
            WorkerTransport::Tcp => {
                Worker::spawn_tcp(&exec.worker_bin, &exec.envs, exec.connect_timeout)
            }
            WorkerTransport::Remote(addrs) => {
                Worker::dial(addrs[widx % addrs.len()], exec.connect_timeout)
            }
        }
    }

    fn spawn_stdio(bin: &Path, envs: &[(OsString, OsString)]) -> Result<Worker, std::io::Error> {
        let mut cmd = Command::new(bin);
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped());
        for (key, value) in envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (results, reader) = spawn_reader(stdout);
        Ok(Worker {
            child: Some(child),
            io: WorkerIo::Stdio(stdin),
            results,
            reader,
        })
    }

    /// Connect-back TCP: bind an ephemeral loopback port, hand it to the
    /// worker via `--connect`, and accept with a deadline so a worker
    /// that dies before connecting cannot wedge the pool.
    fn spawn_tcp(
        bin: &Path,
        envs: &[(OsString, OsString)],
        connect_timeout: Duration,
    ) -> Result<Worker, std::io::Error> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let mut cmd = Command::new(bin);
        cmd.arg("--connect")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        for (key, value) in envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn()?;
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + connect_timeout;
        let stream = loop {
            match listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(std::io::Error::other(format!(
                            "worker exited ({status}) before connecting back"
                        )));
                    }
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(std::io::Error::other(
                            "worker did not connect back within the connect timeout",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
            }
        };
        stream.set_nonblocking(false)?;
        let _ = stream.set_nodelay(true);
        let write = stream.try_clone()?;
        let (results, reader) = spawn_reader(stream);
        Ok(Worker {
            child: Some(child),
            io: WorkerIo::Tcp(write),
            results,
            reader,
        })
    }

    /// Dial-out to a remote `--listen` worker.
    fn dial(addr: SocketAddr, connect_timeout: Duration) -> Result<Worker, std::io::Error> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        let _ = stream.set_nodelay(true);
        let write = stream.try_clone()?;
        let (results, reader) = spawn_reader(stream);
        Ok(Worker {
            child: None,
            io: WorkerIo::Tcp(write),
            results,
            reader,
        })
    }

    fn run_job(&mut self, job: usize, scenario: &Scenario, timeout: Duration) -> JobResult {
        if let Err(e) = write_job(&mut self.io, job as u64, scenario) {
            // A write failure (EPIPE) means the worker is gone.
            return JobResult::WorkerDied(WorkerFailure::Io(format!("job write failed: {e}")));
        }
        match self.results.recv_timeout(timeout) {
            Ok(Ok(Some((id, report)))) if id == job as u64 => JobResult::Done(report),
            Ok(Ok(Some((id, _)))) => JobResult::Fatal(ProcessError::Mismatch { job, got: id }),
            // EOF between frames: the worker exited under the job.
            Ok(Ok(None)) => JobResult::WorkerDied(WorkerFailure::CleanEof),
            // A stream dying mid-frame is a crash while answering.
            Err(RecvTimeoutError::Timeout) => JobResult::WorkerDied(WorkerFailure::Hang {
                timeout_ms: timeout.as_millis() as u64,
            }),
            Err(RecvTimeoutError::Disconnected) => {
                JobResult::WorkerDied(WorkerFailure::Io("reader thread ended".into()))
            }
            Ok(Err(FrameError::Codec(CodecError::UnexpectedEof))) => {
                JobResult::WorkerDied(WorkerFailure::TornFrame)
            }
            // Checksum mismatch is transport corruption: retriable on a
            // fresh worker. Any other decode failure means the bytes are
            // simply wrong and retrying cannot help.
            Ok(Err(FrameError::Codec(CodecError::ChecksumMismatch))) => {
                JobResult::WorkerDied(WorkerFailure::CorruptFrame)
            }
            Ok(Err(FrameError::Io(e))) => {
                JobResult::WorkerDied(WorkerFailure::Io(format!("result read failed: {e}")))
            }
            Ok(Err(FrameError::Codec(error))) => {
                JobResult::Fatal(ProcessError::Codec { job, error })
            }
        }
    }

    /// Orderly shutdown: signal end-of-jobs (close stdin / shut down the
    /// socket's write side — the worker reads EOF and exits or moves to
    /// its next connection), reap any child, and join the reader.
    fn shutdown(self) {
        let Worker {
            child,
            io,
            results,
            reader,
        } = self;
        io.close();
        if let Some(mut child) = child {
            let _ = child.wait();
        }
        drop(results);
        let _ = reader.join();
    }

    /// Post-crash (or post-hang) cleanup: make sure the process is gone
    /// (for a remote worker, that the connection is), reap any child, and
    /// join the reader (the kill or socket shutdown closes the stream, so
    /// the reader's blocking read returns).
    fn reap(self) {
        let Worker {
            child,
            io,
            results,
            reader,
        } = self;
        io.sever();
        if let Some(mut child) = child {
            let _ = child.kill();
            let _ = child.wait();
        }
        drop(results);
        let _ = reader.join();
    }
}

/// What the reader thread delivers per result frame: `Some((job id,
/// report))`, `None` on a clean end-of-stream, or the frame error.
type ResultMsg = Result<Option<(u64, SimReport)>, FrameError>;

/// Starts the dedicated result-reader thread over a worker's byte stream,
/// returning the channel the parent waits on and the thread's handle.
fn spawn_reader(
    mut input: impl std::io::Read + Send + 'static,
) -> (Receiver<ResultMsg>, std::thread::JoinHandle<()>) {
    let (tx, results) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || loop {
        let msg = read_result(&mut input);
        // Anything but a result ends the stream; forward it and stop.
        let stop = !matches!(msg, Ok(Some(_)));
        if tx.send(msg).is_err() || stop {
            break;
        }
    });
    (results, reader)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_names_the_strategy_and_floors_workers() {
        assert_eq!(ProcessExecutor::new(3).describe(), "process(3)");
        assert_eq!(ProcessExecutor::new(0).workers(), 1);
    }

    #[test]
    fn builders_override_bin_attempts_and_timeout() {
        let exec = ProcessExecutor::new(2)
            .with_worker_bin("/tmp/custom-worker")
            .with_max_attempts(0)
            .with_job_timeout(Duration::ZERO);
        assert_eq!(exec.worker_bin(), Path::new("/tmp/custom-worker"));
        assert_eq!(exec.max_attempts, 1, "attempt budget floors at one");
        assert_eq!(
            exec.job_timeout(),
            Duration::from_millis(1),
            "timeout floors at one millisecond"
        );
    }

    #[test]
    fn empty_batches_spawn_nothing() {
        // A missing binary only matters once there is work.
        let exec = ProcessExecutor::new(2).with_worker_bin("/nonexistent/nni-worker");
        let (reports, stats) = exec.try_reports(&[]).expect("empty batch");
        assert!(reports.is_empty());
        assert_eq!(stats, ProcessStats::default());
        assert!(exec.execute(&[]).is_empty());
        let batch = exec.try_batch(&[]).expect("empty batch");
        assert!(batch.is_complete());
    }

    #[test]
    fn missing_worker_binary_is_a_spawn_error() {
        let scenario = crate::library::topology_a_scenario(crate::library::ExperimentParams {
            duration_s: 2.0,
            ..crate::library::ExperimentParams::default()
        });
        let exec = ProcessExecutor::new(1).with_worker_bin("/nonexistent/nni-worker");
        let err = exec.try_reports(&[&scenario]).unwrap_err();
        assert!(matches!(err, ProcessError::Spawn { .. }), "got {err}");
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(100);
        assert_eq!(backoff_delay(base, cap, 1), Duration::from_millis(10));
        assert_eq!(backoff_delay(base, cap, 2), Duration::from_millis(20));
        assert_eq!(backoff_delay(base, cap, 3), Duration::from_millis(40));
        assert_eq!(backoff_delay(base, cap, 5), cap, "clamped");
        assert_eq!(backoff_delay(base, cap, 60), cap, "shift saturates");
    }

    #[test]
    fn batch_outcome_strict_view_surfaces_the_first_quarantine() {
        let outcome = BatchOutcome {
            reports: vec![None],
            quarantined: vec![Quarantined {
                job: 0,
                attempts: 3,
                last: WorkerFailure::CleanEof,
            }],
            stats: ProcessStats::default(),
        };
        match outcome.into_reports() {
            Err(ProcessError::JobFailed {
                job: 0,
                attempts: 3,
                last: WorkerFailure::CleanEof,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
