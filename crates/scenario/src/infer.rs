//! The inference half of the decoupled pipeline: run Algorithm 1/2 over any
//! [`MeasurementSet`] — live, decoded from a corpus, or cached — without
//! touching the emulator.
//!
//! [`Experiment::run`](crate::Experiment::run) is now a thin composition of
//! [`Experiment::simulate`](crate::Experiment::simulate) and [`infer`]: the
//! two halves communicate *only* through the measurement set, so
//! `infer(decode(encode(simulate())))` is bit-identical to the fused path
//! (gated by `tests/corpus_roundtrip.rs`).

use nni_core::{evaluate, identify, Config, InferenceResult, Quality};
use nni_measure::{MeasuredObservations, MeasurementSet, NormalizeConfig};

use crate::spec::{Expectation, Scenario};

/// Everything the inference half needs beyond the measurements themselves.
///
/// Varying this over a fixed [`MeasurementSet`] is the whole point of the
/// seam: decision thresholds, clustering configs, and loss thresholds can be
/// explored without re-simulating (see
/// [`SweepSet::decision_thresholds`](crate::SweepSet::decision_thresholds)).
#[derive(Debug, Clone, Copy)]
pub struct InferenceConfig {
    /// Loss threshold for the congestion-free indicator (Table 1: 1%).
    pub loss_threshold: f64,
    /// Salt XORed with the set's seed to seed Algorithm 2's normalization
    /// draw (see [`crate::spec::DEFAULT_NORMALIZE_SALT`]).
    pub normalize_salt: u64,
    /// Algorithm 1 configuration.
    pub algorithm: Config,
    /// Delay-inflation feature for the joint loss+delay congestion-free
    /// indicator. `None` (the default) keeps inference loss-only; cells
    /// without delay statistics fall back to loss-only either way.
    pub delay: Option<nni_core::DelayFeature>,
}

impl InferenceConfig {
    /// The inference configuration a scenario carries — what the fused
    /// [`Scenario::run`] uses, extracted so re-inference sweeps start from
    /// the same point.
    pub fn of(scenario: &Scenario) -> InferenceConfig {
        InferenceConfig {
            loss_threshold: scenario.measurement.loss_threshold,
            normalize_salt: scenario.measurement.normalize_salt,
            algorithm: scenario.inference,
            delay: scenario.measurement.delay_feature,
        }
    }
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            loss_threshold: 0.01,
            normalize_salt: crate::spec::DEFAULT_NORMALIZE_SALT,
            algorithm: Config::clustered(),
            delay: None,
        }
    }
}

/// Runs Algorithm 2 + Algorithm 1 over a measurement set: the pure
/// inference half of [`Experiment::run`](crate::Experiment::run).
///
/// Deterministic in `(set, cfg)`: the normalization draw is seeded from the
/// set's provenance seed XOR the config's salt, exactly as the fused path
/// seeds it.
pub fn infer(set: &MeasurementSet, cfg: &InferenceConfig) -> InferenceResult {
    infer_parts(&set.topology, &set.log, set.provenance.seed, cfg)
}

/// The borrowing core of [`infer`] — shared with the fused
/// [`Experiment::run`](crate::Experiment::run), which holds the pieces
/// inside a `SimReport` and must not clone a measurement set per run.
pub(crate) fn infer_parts(
    topology: &nni_topology::Topology,
    log: &nni_measure::MeasurementLog,
    seed: u64,
    cfg: &InferenceConfig,
) -> InferenceResult {
    let obs = MeasuredObservations::new(
        log,
        NormalizeConfig {
            loss_threshold: cfg.loss_threshold,
            seed: seed ^ cfg.normalize_salt,
            delay: cfg.delay,
        },
    );
    identify(topology, &obs, cfg.algorithm)
}

/// One re-inference product: everything [`ExperimentOutcome`] reports except
/// the raw simulation artifacts (which a measurement set deliberately does
/// not carry).
///
/// [`ExperimentOutcome`]: crate::ExperimentOutcome
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// Per-measured-path congestion probability at the config's loss
    /// threshold, in path order.
    pub path_congestion: Vec<f64>,
    /// Algorithm 1's verdict: any non-neutral link sequence found?
    pub flagged_nonneutral: bool,
    /// Whether the verdict matches the expectation scored against.
    pub correct: bool,
    /// FN / FP / granularity against the expectation's non-neutral links.
    pub quality: Quality,
    /// The full inference result.
    pub inference: InferenceResult,
}

/// [`infer`] plus scoring against a ground-truth expectation — the complete
/// inference half of the fused pipeline.
pub fn infer_scored(
    set: &MeasurementSet,
    cfg: &InferenceConfig,
    expectation: &Expectation,
) -> InferenceOutcome {
    infer_scored_parts(
        &set.topology,
        &set.log,
        set.provenance.seed,
        cfg,
        expectation,
    )
}

/// The borrowing core of [`infer_scored`] (see [`infer_parts`]).
pub(crate) fn infer_scored_parts(
    topology: &nni_topology::Topology,
    log: &nni_measure::MeasurementLog,
    seed: u64,
    cfg: &InferenceConfig,
    expectation: &Expectation,
) -> InferenceOutcome {
    let path_congestion: Vec<f64> = topology
        .path_ids()
        .map(|p| log.congestion_probability(p, cfg.loss_threshold))
        .collect();
    let inference = infer_parts(topology, log, seed, cfg);
    let flagged_nonneutral = inference.network_is_nonneutral();
    let quality = evaluate(
        topology,
        &inference.nonneutral,
        &expectation.nonneutral_links,
    );
    InferenceOutcome {
        path_congestion,
        flagged_nonneutral,
        correct: flagged_nonneutral == expectation.expect_flagged,
        quality,
        inference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};

    fn scenario() -> Scenario {
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 8.0,
            ..ExperimentParams::default()
        })
    }

    #[test]
    fn infer_matches_the_fused_path() {
        let s = scenario();
        let exp = s.compile();
        let fused = exp.run();
        let set = exp.simulate();
        let cfg = InferenceConfig::of(&s);
        assert_eq!(infer(&set, &cfg), fused.inference);
        let scored = infer_scored(&set, &cfg, &s.expectation);
        assert_eq!(scored.path_congestion, fused.path_congestion);
        assert_eq!(scored.flagged_nonneutral, fused.flagged_nonneutral);
        assert_eq!(scored.correct, fused.correct);
        assert_eq!(scored.quality, fused.quality);
    }

    #[test]
    fn inference_config_axes_change_results_without_resimulating() {
        let s = scenario();
        let set = s.compile().simulate();
        let strict = InferenceConfig {
            loss_threshold: 0.5, // absurdly lax: nothing counts as congested
            ..InferenceConfig::of(&s)
        };
        let normal = infer_scored(&set, &InferenceConfig::of(&s), &s.expectation);
        let lax = infer_scored(&set, &strict, &s.expectation);
        assert!(normal.flagged_nonneutral, "20% policing must be flagged");
        assert!(
            !lax.flagged_nonneutral,
            "a 50% loss threshold sees no congestion at all"
        );
    }
}
