//! The runnable half of the API: [`Experiment`] and [`ExperimentOutcome`].
//!
//! An experiment is a compiled scenario: simulator link parameters and the
//! route table are materialized once, so repeated runs (and executor workers)
//! share the same pre-resolved inputs. Acquisition and inference are
//! decoupled: [`Experiment::simulate`] produces a [`MeasurementSet`] (the
//! experiment is a [`MeasurementSource`]), [`crate::infer()`] consumes one,
//! and [`Experiment::run`] is the thin fused composition of the two. Every
//! entry point is a pure function of the scenario — identical scenarios
//! produce bit-identical outcomes on any executor, which is what makes
//! run-sharding and measurement caching safe.

use std::sync::atomic::{AtomicU64, Ordering};

use nni_core::Quality;
use nni_emu::{
    background_route, link_params, measured_routes, LinkParams, Route, RouteId, SimConfig,
    SimReport, Simulator, TrafficSpec,
};
use nni_measure::{
    MeasurementLog, MeasurementSet, MeasurementSource, Provenance, SetKey, SourceError,
};

use crate::infer::InferenceConfig;
use crate::spec::{Scenario, TrafficProfile};

/// Counts every packet-level simulation this process runs — the probe the
/// re-inference tests use to assert that an inference-axis sweep simulates
/// each distinct scenario exactly once.
static SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of packet-level simulations run by this process so far
/// (monotone; compare before/after deltas).
pub fn simulation_count() -> u64 {
    SIMULATIONS.load(Ordering::Relaxed)
}

/// A compiled, runnable scenario.
#[derive(Debug, Clone)]
pub struct Experiment {
    scenario: Scenario,
    links: Vec<LinkParams>,
    routes: Vec<Route>,
    traffic: Vec<TrafficSpec>,
    /// `Scenario::measurement_fingerprint`, computed once at compile time —
    /// sweeps key their caches on it per member.
    fingerprint: u64,
}

impl Experiment {
    /// Compiles a scenario (also available as [`Scenario::compile`]).
    pub fn new(scenario: Scenario) -> Experiment {
        let g = &scenario.topology;
        let mut links = link_params(g, &scenario.differentiation);
        // Per-link queue overrides replace the BDP-derived default; the
        // simulation MSS is fixed by `SimConfig::default()` (see
        // [`Experiment::simulate`]), so packet-denominated overrides resolve
        // here, once.
        let mss = SimConfig::default().mss;
        for &(l, q) in &scenario.queue_overrides {
            links[l.index()].queue_bytes = Some(q.resolve_bytes(mss));
        }
        let mut routes = measured_routes(g);
        let mut traffic: Vec<TrafficSpec> = scenario
            .path_traffic
            .iter()
            .map(|(path, profile)| spec_for(RouteId(path.index() as u32), profile))
            .collect();
        for bg in &scenario.background {
            let route = RouteId(routes.len() as u32);
            routes.push(background_route(bg.links.clone()));
            traffic.extend(bg.profiles.iter().map(|p| spec_for(route, p)));
        }
        let fingerprint = scenario.measurement_fingerprint();
        Experiment {
            scenario,
            links,
            routes,
            traffic,
            fingerprint,
        }
    }

    /// The scenario this experiment was compiled from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The materialized per-link simulator parameters (queue overrides
    /// already applied).
    pub fn links(&self) -> &[LinkParams] {
        &self.links
    }

    /// The materialized route table: one measured route per topology path,
    /// then one route per background source.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// The materialized traffic sources, in path order then background
    /// order.
    pub fn traffic(&self) -> &[TrafficSpec] {
        &self.traffic
    }

    /// Runs only the raw emulation: the packet-level simulation, without
    /// measurement packaging or inference. Deterministic in the scenario —
    /// the basis of the cross-implementation identity tests (which
    /// fingerprint the full report, ground truth and queue traces included).
    pub fn emulate(&self) -> SimReport {
        SIMULATIONS.fetch_add(1, Ordering::Relaxed);
        let s = &self.scenario;
        let m = &s.measurement;
        let mut cfg = SimConfig {
            duration_s: m.duration_s,
            interval_s: m.interval_s,
            seed: m.seed,
            record_delay: m.record_delay,
            ..SimConfig::default()
        };
        if let Some(warmup_s) = m.warmup_s {
            cfg.warmup_s = warmup_s;
        }
        let mut sim = Simulator::new(
            self.links.clone(),
            self.routes.clone(),
            s.topology.path_count(),
            s.class_label_count(),
            cfg,
        );
        for spec in &self.traffic {
            sim.add_traffic(spec.clone());
        }
        sim.run()
    }

    /// Runs the acquisition half: emulate, then package the measurement log
    /// with the topology, class partition, and provenance into the
    /// serializable [`MeasurementSet`] any inference consumer accepts.
    pub fn simulate(&self) -> MeasurementSet {
        self.package(self.emulate().log)
    }

    /// Wraps an already-produced measurement log into this experiment's
    /// measurement set (topology, classes, and provenance attached) —
    /// for callers that already hold a [`SimReport`] and do not want to
    /// simulate again.
    pub fn package(&self, log: MeasurementLog) -> MeasurementSet {
        let s = &self.scenario;
        MeasurementSet {
            topology: s.topology.clone(),
            classes: s.classes.clone(),
            log,
            provenance: Provenance {
                scenario: s.name.clone(),
                scenario_fingerprint: self.fingerprint,
                seed: s.measurement.seed,
                build: nni_emu::build_fingerprint(),
            },
        }
    }

    /// Runs the experiment end to end — the *fused* legacy entry point, now
    /// a thin composition of [`Experiment::simulate`] and
    /// [`crate::infer_scored`] over the measurement-set seam (plus the raw
    /// report, which executors and baselines still want). Prefer the two
    /// halves when measurements are reused across inference configs.
    ///
    /// Takes `&self` so executors can run the same compiled experiment from
    /// several workers; every invocation is deterministic in the scenario.
    pub fn run(&self) -> ExperimentOutcome {
        self.outcome_from(self.emulate())
    }

    /// The inference-and-scoring half of [`Experiment::run`] over an
    /// already-produced report — how a [`ProcessExecutor`] parent turns a
    /// worker subprocess's shipped [`SimReport`] into the same outcome the
    /// fused path produces (inference is deterministic in the report, so
    /// only the report ever crosses the process boundary).
    ///
    /// [`ProcessExecutor`]: crate::ProcessExecutor
    pub fn outcome_from(&self, report: SimReport) -> ExperimentOutcome {
        let s = &self.scenario;
        // The borrowing core of `infer_scored`: identical inference over
        // the same seam, without materializing (cloning) a MeasurementSet
        // per run — run() is the executors' hot path.
        let scored = crate::infer::infer_scored_parts(
            &s.topology,
            &report.log,
            s.measurement.seed,
            &InferenceConfig::of(s),
            &s.expectation,
        );
        ExperimentOutcome {
            path_congestion: scored.path_congestion,
            flagged_nonneutral: scored.flagged_nonneutral,
            correct: scored.correct,
            quality: scored.quality,
            inference: scored.inference,
            report,
        }
    }
}

/// The live emulator as a measurement source: acquisition simulates.
impl MeasurementSource for Experiment {
    fn key(&self) -> SetKey {
        SetKey {
            fingerprint: self.fingerprint,
            seed: self.scenario.measurement.seed,
        }
    }

    fn acquire(&self) -> Result<MeasurementSet, SourceError> {
        Ok(self.simulate())
    }
}

fn spec_for(route: RouteId, p: &TrafficProfile) -> TrafficSpec {
    TrafficSpec {
        route,
        class: p.class,
        cc: p.cc.clone(),
        size: p.size,
        mean_gap_s: p.mean_gap_s,
        parallel: p.parallel,
    }
}

/// Everything one experiment run produces. `PartialEq` compares every field
/// bit for bit — the executor-equivalence guarantee is checked with plain
/// `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Per-measured-path congestion probability, in path order (the bars of
    /// a Figure 8 panel).
    pub path_congestion: Vec<f64>,
    /// Algorithm 1's verdict: any non-neutral link sequence found?
    pub flagged_nonneutral: bool,
    /// Whether the verdict matches the scenario's expectation.
    pub correct: bool,
    /// FN / FP / granularity against the expectation's non-neutral links.
    pub quality: Quality,
    /// The full inference result.
    pub inference: nni_core::InferenceResult,
    /// Raw simulation report (log, ground truth, queue traces, counters).
    pub report: SimReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Expectation, TrafficProfile};
    use nni_emu::{policer_at_fraction, CcKind};
    use nni_topology::library::topology_a;

    fn policing_scenario(seed: u64) -> Scenario {
        let paper = topology_a(0.05, 0.05);
        let l5 = paper.topology.link_by_name("l5").unwrap();
        let mech = policer_at_fraction(&paper.topology, l5, 1, 0.2, 0.01);
        let mut b = Scenario::builder("policing", paper.topology.clone())
            .classes(paper.classes.clone())
            .differentiate(mech.0, mech.1)
            .duration_s(20.0)
            .seed(seed)
            .expect(Expectation::nonneutral(vec![l5]));
        for p in paper.topology.path_ids() {
            let class = u8::from(paper.classes[1].contains(&p));
            b = b.path_traffic(
                p,
                TrafficProfile::pareto_bits(class, CcKind::Cubic, 10e6, 10.0, 8),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn run_is_deterministic_in_the_scenario() {
        let s = policing_scenario(5);
        let a = s.compile().run();
        let b = s.compile().run();
        assert_eq!(a, b, "same scenario must produce bit-identical outcomes");
        let c = s.with_seed(6).run();
        assert_ne!(
            a.report.segments_sent, c.report.segments_sent,
            "different seed must change the traffic"
        );
    }

    #[test]
    fn experiment_is_a_measurement_source() {
        let s = policing_scenario(5);
        let exp = s.compile();
        let key = exp.key();
        assert_eq!(key.seed, 5);
        assert_eq!(key.fingerprint, s.measurement_fingerprint());
        let before = simulation_count();
        let set = exp.acquire().expect("live acquisition is infallible");
        // Other unit tests simulate concurrently, so only monotonicity is
        // asserted here; the exact-count probe lives in the serialized
        // `tests/reinfer.rs` suite.
        assert!(simulation_count() > before, "acquire must simulate");
        assert_eq!(set.key(), key);
        assert_eq!(set.log, exp.emulate().log);
        assert_eq!(set.provenance.scenario, "policing");
        assert!(set.provenance.build.starts_with("nni-emu"));
        assert_eq!(set.classes, s.classes);
    }

    #[test]
    fn outcome_covers_all_measured_paths() {
        let out = policing_scenario(5).run();
        assert_eq!(out.path_congestion.len(), 4);
        assert!(out.report.segments_sent > 0);
        // The policed class congests more than the protected one.
        let c1 = (out.path_congestion[0] + out.path_congestion[1]) / 2.0;
        let c2 = (out.path_congestion[2] + out.path_congestion[3]) / 2.0;
        assert!(c2 > c1, "policed paths must congest more: {c1} vs {c2}");
    }
}
