//! The runnable half of the API: [`Experiment`] and [`ExperimentOutcome`].
//!
//! An experiment is a compiled scenario: simulator link parameters and the
//! route table are materialized once, so repeated runs (and executor workers)
//! share the same pre-resolved inputs. `run` is a pure function of the
//! scenario — identical scenarios produce bit-identical outcomes on any
//! executor, which is what makes run-sharding safe.

use nni_core::{evaluate, identify, Quality};
use nni_emu::{
    background_route, link_params, measured_routes, LinkParams, Route, RouteId, SimConfig,
    SimReport, Simulator, TrafficSpec,
};
use nni_measure::{MeasuredObservations, NormalizeConfig};

use crate::spec::{Scenario, TrafficProfile};

/// A compiled, runnable scenario.
#[derive(Debug, Clone)]
pub struct Experiment {
    scenario: Scenario,
    links: Vec<LinkParams>,
    routes: Vec<Route>,
    traffic: Vec<TrafficSpec>,
}

impl Experiment {
    /// Compiles a scenario (also available as [`Scenario::compile`]).
    pub fn new(scenario: Scenario) -> Experiment {
        let g = &scenario.topology;
        let mut links = link_params(g, &scenario.differentiation);
        // Per-link queue overrides replace the BDP-derived default; the
        // simulation MSS is fixed by `SimConfig::default()` (see
        // [`Experiment::simulate`]), so packet-denominated overrides resolve
        // here, once.
        let mss = SimConfig::default().mss;
        for &(l, q) in &scenario.queue_overrides {
            links[l.index()].queue_bytes = Some(q.resolve_bytes(mss));
        }
        let mut routes = measured_routes(g);
        let mut traffic: Vec<TrafficSpec> = scenario
            .path_traffic
            .iter()
            .map(|(path, profile)| spec_for(RouteId(path.index() as u32), profile))
            .collect();
        for bg in &scenario.background {
            let route = RouteId(routes.len() as u32);
            routes.push(background_route(bg.links.clone()));
            traffic.extend(bg.profiles.iter().map(|p| spec_for(route, p)));
        }
        Experiment {
            scenario,
            links,
            routes,
            traffic,
        }
    }

    /// The scenario this experiment was compiled from.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The materialized per-link simulator parameters (queue overrides
    /// already applied).
    pub fn links(&self) -> &[LinkParams] {
        &self.links
    }

    /// The materialized route table: one measured route per topology path,
    /// then one route per background source.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// The materialized traffic sources, in path order then background
    /// order.
    pub fn traffic(&self) -> &[TrafficSpec] {
        &self.traffic
    }

    /// Runs only the emulation half: the packet-level simulation, without
    /// measurement post-processing or inference. Deterministic in the
    /// scenario — the basis of the cross-implementation identity tests.
    pub fn simulate(&self) -> SimReport {
        let s = &self.scenario;
        let m = &s.measurement;
        let mut cfg = SimConfig {
            duration_s: m.duration_s,
            interval_s: m.interval_s,
            seed: m.seed,
            ..SimConfig::default()
        };
        if let Some(warmup_s) = m.warmup_s {
            cfg.warmup_s = warmup_s;
        }
        let mut sim = Simulator::new(
            self.links.clone(),
            self.routes.clone(),
            s.topology.path_count(),
            s.class_label_count(),
            cfg,
        );
        for spec in &self.traffic {
            sim.add_traffic(spec.clone());
        }
        sim.run()
    }

    /// Runs the experiment end to end: emulate → measure → infer → score.
    ///
    /// Takes `&self` so executors can run the same compiled experiment from
    /// several workers; every invocation is deterministic in the scenario.
    pub fn run(&self) -> ExperimentOutcome {
        let s = &self.scenario;
        let g = &s.topology;
        let m = &s.measurement;
        let report = self.simulate();

        let path_congestion: Vec<f64> = g
            .path_ids()
            .map(|path| report.log.congestion_probability(path, m.loss_threshold))
            .collect();

        let obs = MeasuredObservations::new(
            &report.log,
            NormalizeConfig {
                loss_threshold: m.loss_threshold,
                seed: m.seed ^ m.normalize_salt,
            },
        );
        let inference = identify(g, &obs, s.inference);
        let flagged_nonneutral = inference.network_is_nonneutral();
        let quality = evaluate(g, &inference.nonneutral, &s.expectation.nonneutral_links);

        ExperimentOutcome {
            path_congestion,
            flagged_nonneutral,
            correct: flagged_nonneutral == s.expectation.expect_flagged,
            quality,
            inference,
            report,
        }
    }
}

fn spec_for(route: RouteId, p: &TrafficProfile) -> TrafficSpec {
    TrafficSpec {
        route,
        class: p.class,
        cc: p.cc.clone(),
        size: p.size,
        mean_gap_s: p.mean_gap_s,
        parallel: p.parallel,
    }
}

/// Everything one experiment run produces. `PartialEq` compares every field
/// bit for bit — the executor-equivalence guarantee is checked with plain
/// `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Per-measured-path congestion probability, in path order (the bars of
    /// a Figure 8 panel).
    pub path_congestion: Vec<f64>,
    /// Algorithm 1's verdict: any non-neutral link sequence found?
    pub flagged_nonneutral: bool,
    /// Whether the verdict matches the scenario's expectation.
    pub correct: bool,
    /// FN / FP / granularity against the expectation's non-neutral links.
    pub quality: Quality,
    /// The full inference result.
    pub inference: nni_core::InferenceResult,
    /// Raw simulation report (log, ground truth, queue traces, counters).
    pub report: SimReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Expectation, TrafficProfile};
    use nni_emu::{policer_at_fraction, CcKind};
    use nni_topology::library::topology_a;

    fn policing_scenario(seed: u64) -> Scenario {
        let paper = topology_a(0.05, 0.05);
        let l5 = paper.topology.link_by_name("l5").unwrap();
        let mech = policer_at_fraction(&paper.topology, l5, 1, 0.2, 0.01);
        let mut b = Scenario::builder("policing", paper.topology.clone())
            .classes(paper.classes.clone())
            .differentiate(mech.0, mech.1)
            .duration_s(20.0)
            .seed(seed)
            .expect(Expectation::nonneutral(vec![l5]));
        for p in paper.topology.path_ids() {
            let class = u8::from(paper.classes[1].contains(&p));
            b = b.path_traffic(
                p,
                TrafficProfile::pareto_bits(class, CcKind::Cubic, 10e6, 10.0, 8),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn run_is_deterministic_in_the_scenario() {
        let s = policing_scenario(5);
        let a = s.compile().run();
        let b = s.compile().run();
        assert_eq!(a, b, "same scenario must produce bit-identical outcomes");
        let c = s.with_seed(6).run();
        assert_ne!(
            a.report.segments_sent, c.report.segments_sent,
            "different seed must change the traffic"
        );
    }

    #[test]
    fn outcome_covers_all_measured_paths() {
        let out = policing_scenario(5).run();
        assert_eq!(out.path_congestion.len(), 4);
        assert!(out.report.segments_sent > 0);
        // The policed class congests more than the protected one.
        let c1 = (out.path_congestion[0] + out.path_congestion[1]) / 2.0;
        let c2 = (out.path_congestion[2] + out.path_congestion[3]) / 2.0;
        assert!(c2 > c1, "policed paths must congest more: {c1} vs {c2}");
    }
}
