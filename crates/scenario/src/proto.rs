//! The worker wire protocol: a complete [`Scenario`] codec plus the job and
//! result frames a [`ProcessExecutor`](crate::ProcessExecutor) exchanges
//! with its `nni-worker` subprocesses.
//!
//! Layering mirrors the crate graph: byte primitives and checksummed
//! framing live in `nni_measure::wire`, the `SimReport` codec in
//! `nni_emu::wire`, and the scenario codec here — the only layer that can
//! see every field a scenario carries. A worker receives a *scenario* (not
//! a compiled experiment: compilation is deterministic and cheap, and the
//! scenario is the closed serializable description), runs the emulation,
//! and ships the `SimReport` back; the parent re-derives outcomes and
//! measurement sets from the report, so inference never crosses the wire.
//!
//! # Frames
//!
//! Both frame types use the PR 5 framing (magic, version byte, length, FNV
//! trailer — see `nni_measure::wire`) with a `job id u64` ahead of the
//! payload so responses can be matched to requests:
//!
//! ```text
//! b"NNIWJOB"  job id u64 LE · encoded Scenario
//! b"NNIWRES"  job id u64 LE · encoded SimReport
//! ```
//!
//! Decoded scenarios are **re-validated** through
//! [`ScenarioBuilder::of`](crate::ScenarioBuilder::of) — a stream that
//! checksums correctly but describes an invalid scenario (unknown links,
//! empty fleets) fails the decode instead of panicking inside the emulator.

use std::io::{Read, Write};

use nni_emu::{CcFleet, CcKind, Differentiation, ShapeLaneConfig, SimReport, SizeDist};
use nni_measure::codec::CodecError;
use nni_measure::wire::{read_frame, write_frame, FrameError};
use nni_measure::{WireReader, WireWriter};
use nni_topology::{LinkId, NodeKind, PathId, TopologyBuilder};

use crate::spec::{
    BackgroundTraffic, Expectation, MeasurementConfig, QueueOverride, Scenario, ScenarioBuilder,
    TrafficProfile,
};

/// Frame magic of a job (parent → worker): job id + scenario.
pub const JOB_MAGIC: &[u8; 7] = b"NNIWJOB";

/// Frame magic of a result (worker → parent): job id + sim report.
pub const RESULT_MAGIC: &[u8; 7] = b"NNIWRES";

// ---------------------------------------------------------------- scenario

fn put_fleet(w: &mut WireWriter, fleet: &CcFleet) {
    let put_kind = |w: &mut WireWriter, k: CcKind| {
        w.u8(match k {
            CcKind::NewReno => 0,
            CcKind::Cubic => 1,
        })
    };
    match fleet {
        CcFleet::Uniform(kind) => {
            w.u8(1);
            put_kind(w, *kind);
        }
        CcFleet::Mixed(kinds) => {
            w.u8(2);
            w.vu(kinds.len() as u64);
            for &k in kinds {
                put_kind(w, k);
            }
        }
    }
}

fn get_fleet(r: &mut WireReader<'_>) -> Result<CcFleet, CodecError> {
    let get_kind = |r: &mut WireReader<'_>| -> Result<CcKind, CodecError> {
        match r.u8()? {
            0 => Ok(CcKind::NewReno),
            1 => Ok(CcKind::Cubic),
            _ => Err(CodecError::BadValue("congestion-control kind")),
        }
    };
    match r.u8()? {
        1 => Ok(CcFleet::Uniform(get_kind(r)?)),
        2 => {
            let n = r.len()?;
            let mut kinds = Vec::with_capacity(n);
            for _ in 0..n {
                kinds.push(get_kind(r)?);
            }
            Ok(CcFleet::Mixed(kinds))
        }
        _ => Err(CodecError::BadValue("fleet tag")),
    }
}

fn put_profile(w: &mut WireWriter, p: &TrafficProfile) {
    w.u8(p.class);
    put_fleet(w, &p.cc);
    match p.size {
        SizeDist::ParetoMean { mean_bytes, shape } => {
            w.u8(1);
            w.f64(mean_bytes);
            w.f64(shape);
        }
        SizeDist::Fixed { bytes } => {
            w.u8(2);
            w.vu(bytes);
        }
    }
    w.f64(p.mean_gap_s);
    w.vu(p.parallel as u64);
}

fn get_profile(r: &mut WireReader<'_>) -> Result<TrafficProfile, CodecError> {
    let class = r.u8()?;
    let cc = get_fleet(r)?;
    let size = match r.u8()? {
        1 => SizeDist::ParetoMean {
            mean_bytes: r.f64()?,
            shape: r.f64()?,
        },
        2 => SizeDist::Fixed { bytes: r.vu()? },
        _ => return Err(CodecError::BadValue("size-distribution tag")),
    };
    Ok(TrafficProfile {
        class,
        cc,
        size,
        mean_gap_s: r.f64()?,
        parallel: r.vu()? as usize,
    })
}

/// Encodes a scenario into bare payload bytes (framing is the caller's).
pub fn encode_scenario(s: &Scenario) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.str(&s.name);

    // Topology — the same field order as the measurement-set codec's
    // TOPOLOGY section, so the two formats stay mutually auditable.
    let g = &s.topology;
    w.vu(g.nodes().len() as u64);
    for n in g.nodes() {
        w.u8(matches!(n.kind, NodeKind::Relay) as u8);
        w.str(&n.name);
    }
    w.vu(g.link_count() as u64);
    for l in g.links() {
        w.vu(l.src.index() as u64);
        w.vu(l.dst.index() as u64);
        w.f64(l.capacity_bps);
        w.f64(l.delay_s);
        w.str(&l.name);
    }
    w.vu(g.path_count() as u64);
    for p in g.paths() {
        w.str(p.name());
        w.vu(p.len() as u64);
        for l in p.links() {
            w.vu(l.index() as u64);
        }
    }

    w.vu(s.classes.len() as u64);
    for class in &s.classes {
        w.vu(class.len() as u64);
        for p in class {
            w.vu(p.index() as u64);
        }
    }

    w.vu(s.differentiation.len() as u64);
    for (l, diff) in &s.differentiation {
        w.vu(l.index() as u64);
        match diff {
            Differentiation::None => w.u8(0),
            Differentiation::Policing {
                class,
                rate_bps,
                burst_bytes,
            } => {
                w.u8(1);
                w.u8(*class);
                w.f64(*rate_bps);
                w.f64(*burst_bytes);
            }
            Differentiation::Shaping { lanes } => {
                w.u8(2);
                w.vu(lanes.len() as u64);
                for lane in lanes {
                    w.u8(lane.class);
                    w.f64(lane.rate_bps);
                    w.f64(lane.burst_bytes);
                    w.vu(lane.buffer_bytes);
                }
            }
        }
    }

    w.vu(s.path_traffic.len() as u64);
    for (p, profile) in &s.path_traffic {
        w.vu(p.index() as u64);
        put_profile(&mut w, profile);
    }

    w.vu(s.background.len() as u64);
    for bg in &s.background {
        w.vu(bg.links.len() as u64);
        for l in &bg.links {
            w.vu(l.index() as u64);
        }
        w.vu(bg.profiles.len() as u64);
        for profile in &bg.profiles {
            put_profile(&mut w, profile);
        }
    }

    w.vu(s.queue_overrides.len() as u64);
    for (l, q) in &s.queue_overrides {
        w.vu(l.index() as u64);
        match q {
            QueueOverride::Bytes(b) => {
                w.u8(1);
                w.vu(*b);
            }
            QueueOverride::Packets(n) => {
                w.u8(2);
                w.vu(*n as u64);
            }
        }
    }

    let m = &s.measurement;
    w.f64(m.duration_s);
    w.f64(m.interval_s);
    w.f64(m.loss_threshold);
    match m.warmup_s {
        None => w.u8(0),
        Some(warmup) => {
            w.u8(1);
            w.f64(warmup);
        }
    }
    w.u64(m.seed);
    w.u64(m.normalize_salt);
    w.u8(m.record_delay as u8);
    match m.delay_feature {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            w.f64(f.rel_factor);
            w.f64(f.abs_floor_s);
        }
    }

    w.vu(s.inference.min_pairs as u64);
    match s.inference.mode {
        nni_core::DecisionMode::Exact { tol } => {
            w.u8(1);
            w.f64(tol);
        }
        nni_core::DecisionMode::Clustered {
            guard,
            abs_threshold,
            rel_margin,
        } => {
            w.u8(2);
            w.f64(guard.abs_floor);
            w.f64(guard.rel_factor);
            w.f64(abs_threshold);
            w.f64(rel_margin);
        }
    }

    w.vu(s.expectation.nonneutral_links.len() as u64);
    for l in &s.expectation.nonneutral_links {
        w.vu(l.index() as u64);
    }
    w.u8(s.expectation.expect_flagged as u8);

    w.into_bytes()
}

/// Decodes a scenario payload, consuming every byte and re-validating the
/// result through the builder.
pub fn decode_scenario(bytes: &[u8]) -> Result<Scenario, CodecError> {
    let mut r = WireReader::new(bytes);
    let name = r.str()?;

    let mut b = TopologyBuilder::new();
    let n_nodes = r.len()?;
    for _ in 0..n_nodes {
        let kind = r.u8()?;
        let node_name = r.str()?;
        match kind {
            0 => b.host(&node_name),
            1 => b.relay(&node_name),
            _ => return Err(CodecError::BadValue("node kind")),
        };
    }
    let n_links = r.len()?;
    for _ in 0..n_links {
        let src = r.vu()? as usize;
        let dst = r.vu()? as usize;
        let capacity = r.f64()?;
        let delay = r.f64()?;
        let link_name = r.str()?;
        b.link_with(
            &link_name,
            nni_topology::NodeId(src),
            nni_topology::NodeId(dst),
            capacity,
            delay,
        )?;
    }
    let n_paths = r.len()?;
    for _ in 0..n_paths {
        let path_name = r.str()?;
        let n = r.len()?;
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            links.push(LinkId(r.vu()? as usize));
        }
        b.path(&path_name, links)?;
    }
    let topology = b.build();

    let n_classes = r.len()?;
    let mut classes = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let n = r.len()?;
        let mut class = Vec::with_capacity(n);
        for _ in 0..n {
            class.push(PathId(r.vu()? as usize));
        }
        classes.push(class);
    }

    let n_diff = r.len()?;
    let mut differentiation = Vec::with_capacity(n_diff);
    for _ in 0..n_diff {
        let link = LinkId(r.vu()? as usize);
        let diff = match r.u8()? {
            0 => Differentiation::None,
            1 => Differentiation::Policing {
                class: r.u8()?,
                rate_bps: r.f64()?,
                burst_bytes: r.f64()?,
            },
            2 => {
                let n = r.len()?;
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    lanes.push(ShapeLaneConfig {
                        class: r.u8()?,
                        rate_bps: r.f64()?,
                        burst_bytes: r.f64()?,
                        buffer_bytes: r.vu()?,
                    });
                }
                Differentiation::Shaping { lanes }
            }
            _ => return Err(CodecError::BadValue("differentiation tag")),
        };
        differentiation.push((link, diff));
    }

    let n_traffic = r.len()?;
    let mut path_traffic = Vec::with_capacity(n_traffic);
    for _ in 0..n_traffic {
        let p = PathId(r.vu()? as usize);
        path_traffic.push((p, get_profile(&mut r)?));
    }

    let n_bg = r.len()?;
    let mut background = Vec::with_capacity(n_bg);
    for _ in 0..n_bg {
        let n = r.len()?;
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            links.push(LinkId(r.vu()? as usize));
        }
        let n = r.len()?;
        let mut profiles = Vec::with_capacity(n);
        for _ in 0..n {
            profiles.push(get_profile(&mut r)?);
        }
        background.push(BackgroundTraffic { links, profiles });
    }

    let n_overrides = r.len()?;
    let mut queue_overrides = Vec::with_capacity(n_overrides);
    for _ in 0..n_overrides {
        let link = LinkId(r.vu()? as usize);
        let q = match r.u8()? {
            1 => QueueOverride::Bytes(r.vu()?),
            2 => {
                let n = r.vu()?;
                if n > u32::MAX as u64 {
                    return Err(CodecError::BadValue("queue override packet count"));
                }
                QueueOverride::Packets(n as u32)
            }
            _ => return Err(CodecError::BadValue("queue-override tag")),
        };
        queue_overrides.push((link, q));
    }

    let duration_s = r.f64()?;
    let interval_s = r.f64()?;
    let loss_threshold = r.f64()?;
    let warmup_s = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        _ => return Err(CodecError::BadValue("warmup tag")),
    };
    let seed = r.u64()?;
    let normalize_salt = r.u64()?;
    let record_delay = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::BadValue("record-delay flag")),
    };
    let delay_feature = match r.u8()? {
        0 => None,
        1 => Some(nni_core::DelayFeature {
            rel_factor: r.f64()?,
            abs_floor_s: r.f64()?,
        }),
        _ => return Err(CodecError::BadValue("delay-feature tag")),
    };
    let measurement = MeasurementConfig {
        duration_s,
        interval_s,
        loss_threshold,
        warmup_s,
        seed,
        normalize_salt,
        record_delay,
        delay_feature,
    };

    let min_pairs = r.vu()? as usize;
    let mode = match r.u8()? {
        1 => nni_core::DecisionMode::Exact { tol: r.f64()? },
        2 => nni_core::DecisionMode::Clustered {
            guard: nni_stats::SeparationGuard {
                abs_floor: r.f64()?,
                rel_factor: r.f64()?,
            },
            abs_threshold: r.f64()?,
            rel_margin: r.f64()?,
        },
        _ => return Err(CodecError::BadValue("decision-mode tag")),
    };
    let inference = nni_core::Config { min_pairs, mode };

    let n = r.len()?;
    let mut nonneutral_links = Vec::with_capacity(n);
    for _ in 0..n {
        nonneutral_links.push(LinkId(r.vu()? as usize));
    }
    let expect_flagged = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::BadValue("expectation flag")),
    };
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes);
    }

    ScenarioBuilder::of(Scenario {
        name,
        topology,
        classes,
        differentiation,
        path_traffic,
        background,
        queue_overrides,
        measurement,
        inference,
        expectation: Expectation {
            nonneutral_links,
            expect_flagged,
        },
    })
    .build()
    .map_err(|_| CodecError::BadValue("decoded scenario failed validation"))
}

// ------------------------------------------------------------------ frames

fn with_job_id(job_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(job_id);
    w.raw(payload);
    w.into_bytes()
}

/// Writes one job frame (parent → worker).
pub fn write_job(out: &mut impl Write, job_id: u64, scenario: &Scenario) -> Result<(), FrameError> {
    write_frame(
        out,
        JOB_MAGIC,
        &with_job_id(job_id, &encode_scenario(scenario)),
    )
}

/// Reads one job frame; `Ok(None)` is a clean end-of-stream (the parent
/// closed the worker's stdin: orderly shutdown).
pub fn read_job(input: &mut impl Read) -> Result<Option<(u64, Scenario)>, FrameError> {
    let Some(payload) = read_frame(input, JOB_MAGIC)? else {
        return Ok(None);
    };
    let mut r = WireReader::new(&payload);
    let job_id = r.u64().map_err(FrameError::Codec)?;
    let scenario = decode_scenario(&payload[r.pos()..]).map_err(FrameError::Codec)?;
    Ok(Some((job_id, scenario)))
}

/// Writes one result frame (worker → parent).
pub fn write_result(
    out: &mut impl Write,
    job_id: u64,
    report: &SimReport,
) -> Result<(), FrameError> {
    out.write_all(&result_frame_bytes(job_id, report))
        .map_err(FrameError::Io)
}

/// The complete on-wire bytes of one result frame — the handle the fault
/// hooks use to tear or bit-flip an answer deliberately.
pub fn result_frame_bytes(job_id: u64, report: &SimReport) -> Vec<u8> {
    nni_measure::wire::frame_bytes(
        RESULT_MAGIC,
        &with_job_id(job_id, &nni_emu::encode_report(report)),
    )
}

/// Reads one result frame; `Ok(None)` is a clean end-of-stream (the worker
/// exited — orderly only if no job was outstanding).
pub fn read_result(input: &mut impl Read) -> Result<Option<(u64, SimReport)>, FrameError> {
    let Some(payload) = read_frame(input, RESULT_MAGIC)? else {
        return Ok(None);
    };
    let mut r = WireReader::new(&payload);
    let job_id = r.u64().map_err(FrameError::Codec)?;
    let report = nni_emu::decode_report(&payload[r.pos()..]).map_err(FrameError::Codec)?;
    Ok(Some((job_id, report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ScenarioGen;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};

    #[test]
    fn library_scenarios_round_trip() {
        for s in crate::library::identity_suite() {
            let bytes = encode_scenario(&s);
            let back = decode_scenario(&bytes).expect("decode");
            // Scenario has no PartialEq (Topology interns derived state), so
            // compare via the measurement fingerprint — which covers every
            // measurement-shaping axis — plus the inference-side fields.
            assert_eq!(back.name, s.name);
            assert_eq!(back.measurement_fingerprint(), s.measurement_fingerprint());
            assert_eq!(back.measurement, s.measurement);
            // `Config` carries no `PartialEq`; its Debug form covers every
            // field bit-exactly enough for a round-trip check (f64 Debug
            // prints the shortest uniquely-parsing form).
            assert_eq!(
                format!("{:?}", back.inference),
                format!("{:?}", s.inference)
            );
            assert_eq!(back.expectation, s.expectation);
        }
    }

    #[test]
    fn decoded_scenarios_emulate_bit_identically() {
        let s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 4.0,
            ..ExperimentParams::default()
        });
        let back = decode_scenario(&encode_scenario(&s)).expect("decode");
        assert_eq!(back.compile().run(), s.compile().run());
    }

    #[test]
    fn generated_scenarios_round_trip() {
        let mut gen = ScenarioGen::new(7);
        for _ in 0..10 {
            let s = gen.scenario();
            let back = decode_scenario(&encode_scenario(&s)).expect("decode");
            assert_eq!(back.measurement_fingerprint(), s.measurement_fingerprint());
            assert_eq!(
                format!("{:?}", back.inference),
                format!("{:?}", s.inference)
            );
        }
    }

    #[test]
    fn delay_fields_round_trip() {
        let mut s = topology_a_scenario(ExperimentParams {
            duration_s: 4.0,
            ..ExperimentParams::default()
        });
        s.measurement.record_delay = true;
        s.measurement.delay_feature = Some(nni_core::DelayFeature {
            rel_factor: 6.5,
            abs_floor_s: 0.125,
        });
        let back = decode_scenario(&encode_scenario(&s)).expect("decode");
        assert_eq!(back.measurement, s.measurement);
        // Recording-only (no feature) survives too.
        s.measurement.delay_feature = None;
        let back = decode_scenario(&encode_scenario(&s)).expect("decode");
        assert_eq!(back.measurement, s.measurement);
        // A feature without recording fails builder re-validation on decode.
        s.measurement.record_delay = false;
        s.measurement.delay_feature = Some(nni_core::DelayFeature::default());
        assert!(decode_scenario(&encode_scenario(&s)).is_err());
    }

    #[test]
    fn invalid_payloads_fail_loudly() {
        let s = topology_a_scenario(ExperimentParams {
            duration_s: 4.0,
            ..ExperimentParams::default()
        });
        let bytes = encode_scenario(&s);
        // Truncation anywhere is an error, never a panic.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_scenario(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut b = bytes.clone();
        b.push(0);
        assert!(matches!(
            decode_scenario(&b),
            Err(CodecError::TrailingBytes)
        ));
    }

    #[test]
    fn job_and_result_frames_round_trip() {
        let s = topology_a_scenario(ExperimentParams {
            duration_s: 4.0,
            ..ExperimentParams::default()
        });
        let report = s.compile().emulate();

        let mut stream = Vec::new();
        write_job(&mut stream, 17, &s).unwrap();
        let mut cursor = std::io::Cursor::new(&stream);
        let (id, back) = read_job(&mut cursor).unwrap().expect("one job");
        assert_eq!(id, 17);
        assert_eq!(back.measurement_fingerprint(), s.measurement_fingerprint());
        assert!(read_job(&mut cursor).unwrap().is_none(), "clean EOF");

        let mut stream = Vec::new();
        write_result(&mut stream, 23, &report).unwrap();
        let mut cursor = std::io::Cursor::new(&stream);
        let (id, back) = read_result(&mut cursor).unwrap().expect("one result");
        assert_eq!(id, 23);
        assert_eq!(back, report);
    }
}
