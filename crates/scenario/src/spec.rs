//! The declarative half of the API: [`Scenario`] and its builder.
//!
//! A scenario is a complete, topology-agnostic description of one
//! experiment: a topology, a class partition, any number of per-link
//! differentiation placements, per-path (and background) traffic, the
//! measurement window, and the inference configuration. Building a scenario
//! validates every cross-reference once, so a compiled [`Experiment`]
//! (see [`crate::experiment`]) can run without further checking.
//!
//! [`Experiment`]: crate::Experiment

use nni_core::Config;
use nni_emu::{CcFleet, CcKind, ClassLabel, Differentiation, SizeDist};
use nni_topology::{LinkId, PathId, Topology};

use crate::experiment::Experiment;

/// Default salt XORed into the simulation seed to derive the normalization
/// (Algorithm 2) seed, so the emulator and the measurement post-processing
/// never consume the same random stream.
pub const DEFAULT_NORMALIZE_SALT: u64 = 0xDEAD;

/// Measurement / simulation window of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementConfig {
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Measurement interval in seconds (Table 1: 100 ms).
    pub interval_s: f64,
    /// Loss threshold for the congestion-free indicator.
    pub loss_threshold: f64,
    /// Warm-up prefix dropped from the log; `None` uses the emulator default.
    pub warmup_s: Option<f64>,
    /// Simulation seed (traffic sampling and start jitter).
    pub seed: u64,
    /// Salt XORed with `seed` to seed Algorithm 2's normalization draw.
    pub normalize_salt: u64,
    /// Record per-packet one-way delay during emulation and fold
    /// per-interval percentiles into the measurement log (the log then
    /// encodes as a v2 set). Off by default so existing scenarios stay
    /// bit-identical.
    pub record_delay: bool,
    /// Delay-inflation feature folded into the congestion-free indicator
    /// (joint loss+delay inference). Requires `record_delay`; `None` keeps
    /// inference loss-only even when delay is recorded.
    pub delay_feature: Option<nni_core::DelayFeature>,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            duration_s: 60.0,
            interval_s: 0.1,
            loss_threshold: 0.01,
            warmup_s: None,
            seed: 42,
            normalize_salt: DEFAULT_NORMALIZE_SALT,
            record_delay: false,
            delay_feature: None,
        }
    }
}

/// One traffic source: `parallel` endless flow slots with a size
/// distribution and an exponential idle gap, stamped with a class label.
///
/// The label is what differentiation mechanisms match on; it usually — but
/// not necessarily — mirrors the path's performance class (background hosts
/// may emit several labels on the same route).
///
/// Slot `k` runs `cc.kind_for(k)`, so one profile can model a heterogeneous
/// *fleet* of end-hosts:
///
/// ```
/// use nni_scenario::TrafficProfile;
/// use nni_emu::{CcFleet, CcKind};
///
/// // Three CUBIC downloads contending with one NewReno upload.
/// let profile = TrafficProfile::pareto_bits(1, CcKind::Cubic, 10e6, 10.0, 4)
///     .with_fleet(CcFleet::fleet(&[(CcKind::Cubic, 3), (CcKind::NewReno, 1)]));
/// assert!(profile.cc.is_mixed());
/// ```
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Class label stamped on every packet.
    pub class: ClassLabel,
    /// Congestion-control assignment across the parallel slots (a plain
    /// [`CcKind`] converts into a uniform fleet).
    pub cc: CcFleet,
    /// Flow-size distribution.
    pub size: SizeDist,
    /// Mean inter-flow idle time in seconds.
    pub mean_gap_s: f64,
    /// Number of parallel flow slots.
    pub parallel: usize,
}

impl TrafficProfile {
    /// Pareto-sized flows (shape 1.5, the scenarios' default) with the given
    /// mean size in bits.
    pub fn pareto_bits(
        class: ClassLabel,
        cc: CcKind,
        mean_bits: f64,
        mean_gap_s: f64,
        parallel: usize,
    ) -> TrafficProfile {
        TrafficProfile {
            class,
            cc: cc.into(),
            size: SizeDist::ParetoMean {
                mean_bytes: mean_bits / 8.0,
                shape: 1.5,
            },
            mean_gap_s,
            parallel,
        }
    }

    /// A persistent fixed-size transfer (e.g. Table 3's 10 Gb flows).
    pub fn persistent_bits(class: ClassLabel, cc: CcKind, bits: f64) -> TrafficProfile {
        TrafficProfile {
            class,
            cc: cc.into(),
            size: SizeDist::Fixed {
                bytes: (bits / 8.0) as u64,
            },
            mean_gap_s: 10.0,
            parallel: 1,
        }
    }

    /// Same profile with a different congestion-control fleet — the
    /// one-liner for turning any constructor's output heterogeneous.
    pub fn with_fleet(mut self, fleet: CcFleet) -> TrafficProfile {
        self.cc = fleet;
        self
    }
}

/// A per-link override of the drop-tail queue capacity, replacing the
/// BDP-derived default of `SimConfig::queue_bytes` on that link only.
///
/// ```
/// use nni_scenario::QueueOverride;
///
/// // 30 kB of buffer, or the same thing in full-MSS packets:
/// assert_eq!(QueueOverride::Bytes(30_000).resolve_bytes(1500), 30_000);
/// assert_eq!(QueueOverride::Packets(20).resolve_bytes(1500), 30_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOverride {
    /// Queue capacity in bytes.
    Bytes(u64),
    /// Queue capacity in full-MSS packets (resolved against the simulation
    /// MSS at compile time).
    Packets(u32),
}

impl QueueOverride {
    /// The capacity in bytes, given the simulation MSS.
    pub fn resolve_bytes(&self, mss: u32) -> u64 {
        match self {
            QueueOverride::Bytes(b) => *b,
            QueueOverride::Packets(n) => *n as u64 * mss as u64,
        }
    }

    /// Whether the override describes a zero-capacity queue (invalid: the
    /// link could never transmit).
    pub fn is_zero(&self) -> bool {
        match self {
            QueueOverride::Bytes(b) => *b == 0,
            QueueOverride::Packets(n) => *n == 0,
        }
    }
}

/// An unmeasured background source: loads the network over an explicit link
/// route without appearing in the measurement log.
#[derive(Debug, Clone)]
pub struct BackgroundTraffic {
    /// The links the background route traverses, in order.
    pub links: Vec<LinkId>,
    /// The traffic emitted on that route.
    pub profiles: Vec<TrafficProfile>,
}

/// Ground truth the outcome is scored against.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Links that actually differentiate (for FN/FP/granularity).
    pub nonneutral_links: Vec<LinkId>,
    /// Whether Algorithm 1 *should* flag the network. Usually
    /// `!nonneutral_links.is_empty()`, but a behaviourally neutral mechanism
    /// (the §6.3 50/50 shaper) carries mechanisms yet expects no flag.
    pub expect_flagged: bool,
}

impl Expectation {
    /// A neutral network: nothing to find.
    pub fn neutral() -> Expectation {
        Expectation {
            nonneutral_links: Vec::new(),
            expect_flagged: false,
        }
    }

    /// A network whose listed links differentiate observably.
    pub fn nonneutral(links: Vec<LinkId>) -> Expectation {
        Expectation {
            expect_flagged: !links.is_empty(),
            nonneutral_links: links,
        }
    }
}

/// Why a scenario failed to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A class partition member is not a path of the topology.
    UnknownPath(PathId),
    /// A path appears in more than one class.
    OverlappingClasses(PathId),
    /// A differentiation placement or route references an unknown link.
    UnknownLink(LinkId),
    /// Two differentiation mechanisms were placed on the same link.
    DuplicateDifferentiation(LinkId),
    /// A background route has no links.
    EmptyBackgroundRoute,
    /// The scenario has no traffic at all.
    NoTraffic,
    /// A non-positive duration or interval.
    BadWindow,
    /// A traffic profile carries an empty congestion-control fleet.
    EmptyCcFleet,
    /// A policer (or shaper lane) with a non-positive token rate on a link.
    ZeroRatePolicer(LinkId),
    /// Two shaper lanes on one link target the same class — the mechanism
    /// could not decide which lane a packet belongs to.
    OverlappingLanes(LinkId),
    /// A shaper was configured with no lanes at all.
    EmptyShaper(LinkId),
    /// A queue override that describes a zero-capacity queue.
    BadQueueOverride(LinkId),
    /// Two queue overrides on the same link.
    DuplicateQueueOverride(LinkId),
    /// A delay feature was configured without enabling delay recording —
    /// joint inference would silently degrade to loss-only.
    DelayFeatureWithoutRecording,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownPath(p) => write!(f, "unknown path {p}"),
            ScenarioError::OverlappingClasses(p) => {
                write!(f, "path {p} appears in more than one class")
            }
            ScenarioError::UnknownLink(l) => write!(f, "unknown link {l}"),
            ScenarioError::DuplicateDifferentiation(l) => {
                write!(f, "two differentiation mechanisms on link {l}")
            }
            ScenarioError::EmptyBackgroundRoute => write!(f, "background route has no links"),
            ScenarioError::NoTraffic => write!(f, "scenario has no traffic sources"),
            ScenarioError::BadWindow => write!(f, "duration and interval must be positive"),
            ScenarioError::EmptyCcFleet => {
                write!(f, "traffic profile has an empty congestion-control fleet")
            }
            ScenarioError::ZeroRatePolicer(l) => {
                write!(f, "non-positive token rate on link {l}")
            }
            ScenarioError::OverlappingLanes(l) => {
                write!(f, "two shaper lanes target the same class on link {l}")
            }
            ScenarioError::EmptyShaper(l) => write!(f, "shaper with no lanes on link {l}"),
            ScenarioError::BadQueueOverride(l) => {
                write!(f, "zero-capacity queue override on link {l}")
            }
            ScenarioError::DuplicateQueueOverride(l) => {
                write!(f, "two queue overrides on link {l}")
            }
            ScenarioError::DelayFeatureWithoutRecording => {
                write!(f, "delay feature configured without record_delay")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A validated, self-contained experiment description. Construct through
/// [`Scenario::builder`]; run through [`Scenario::compile`] /
/// [`Scenario::run`] or an [`Executor`](crate::Executor).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (reports, progress output).
    pub name: String,
    /// The network under test.
    pub topology: Topology,
    /// Performance-class partition of the measured paths.
    pub classes: Vec<Vec<PathId>>,
    /// Per-link differentiation placements — any number of links.
    pub differentiation: Vec<(LinkId, Differentiation)>,
    /// Traffic on measured paths.
    pub path_traffic: Vec<(PathId, TrafficProfile)>,
    /// Unmeasured background traffic.
    pub background: Vec<BackgroundTraffic>,
    /// Per-link queue-capacity overrides (links not listed keep the
    /// BDP-derived default).
    pub queue_overrides: Vec<(LinkId, QueueOverride)>,
    /// Measurement window and seed.
    pub measurement: MeasurementConfig,
    /// Algorithm 1 configuration.
    pub inference: Config,
    /// Ground truth.
    pub expectation: Expectation,
}

impl Scenario {
    /// Starts a builder over a topology.
    pub fn builder(name: impl Into<String>, topology: Topology) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                topology,
                classes: Vec::new(),
                differentiation: Vec::new(),
                path_traffic: Vec::new(),
                background: Vec::new(),
                queue_overrides: Vec::new(),
                measurement: MeasurementConfig::default(),
                inference: Config::clustered(),
                expectation: Expectation::neutral(),
            },
        }
    }

    /// The number of class labels the simulator must account for: at least
    /// two, and enough for every partition class, traffic label, and
    /// mechanism target.
    pub fn class_label_count(&self) -> usize {
        let mut n = self.classes.len().max(2);
        let mut see = |label: ClassLabel| n = n.max(label as usize + 1);
        for (_, profile) in &self.path_traffic {
            see(profile.class);
        }
        for bg in &self.background {
            for profile in &bg.profiles {
                see(profile.class);
            }
        }
        for (_, diff) in &self.differentiation {
            match diff {
                Differentiation::None => {}
                Differentiation::Policing { class, .. } => see(*class),
                Differentiation::Shaping { lanes } => {
                    for lane in lanes {
                        see(lane.class);
                    }
                }
            }
        }
        n
    }

    /// The class index of a measured path, if it is classified.
    pub fn class_of(&self, p: PathId) -> Option<usize> {
        self.classes.iter().position(|c| c.contains(&p))
    }

    /// FNV-1a fingerprint of every *measurement-relevant* axis: topology,
    /// class partition, differentiation placements, traffic, queue
    /// overrides, and the simulation window — but **not** the seed (the
    /// cache key pairs fingerprint with seed), and not the inference-side
    /// knobs (name, loss threshold, normalization salt, Algorithm 1 config,
    /// expectation), which do not shape the measured counts.
    ///
    /// Two scenarios with equal fingerprints produce bit-identical
    /// measurement logs at equal seeds; this is what keys the
    /// [`MeasurementCache`](nni_measure::MeasurementCache) and what an
    /// inference-axis sweep dedups on.
    pub fn measurement_fingerprint(&self) -> u64 {
        use nni_emu::{CcFleet, SizeDist};
        let mut h = nni_measure::Fnv::new();
        let g = &self.topology;
        // Topology structure and physical parameters.
        h.word(g.nodes().len() as u64);
        for n in g.nodes() {
            h.word(matches!(n.kind, nni_topology::NodeKind::Relay) as u64);
            h.str(&n.name);
        }
        h.word(g.link_count() as u64);
        for l in g.links() {
            h.word(l.src.index() as u64);
            h.word(l.dst.index() as u64);
            h.word(l.capacity_bps.to_bits());
            h.word(l.delay_s.to_bits());
            h.str(&l.name);
        }
        h.word(g.path_count() as u64);
        for p in g.paths() {
            h.str(p.name());
            h.word(p.len() as u64);
            for l in p.links() {
                h.word(l.index() as u64);
            }
        }
        // Class partition (rides into the set; also sizes the truth
        // recorder via `class_label_count`).
        h.word(self.classes.len() as u64);
        for class in &self.classes {
            h.word(class.len() as u64);
            for p in class {
                h.word(p.index() as u64);
            }
        }
        // Differentiation placements.
        let hash_fleet = |h: &mut nni_measure::Fnv, fleet: &CcFleet| match fleet {
            CcFleet::Uniform(kind) => {
                h.word(1);
                h.word(*kind as u64);
            }
            CcFleet::Mixed(kinds) => {
                h.word(2);
                h.word(kinds.len() as u64);
                for k in kinds {
                    h.word(*k as u64);
                }
            }
        };
        let hash_profile = |h: &mut nni_measure::Fnv, p: &TrafficProfile| {
            h.word(p.class as u64);
            hash_fleet(h, &p.cc);
            match p.size {
                SizeDist::ParetoMean { mean_bytes, shape } => {
                    h.word(1);
                    h.word(mean_bytes.to_bits());
                    h.word(shape.to_bits());
                }
                SizeDist::Fixed { bytes } => {
                    h.word(2);
                    h.word(bytes);
                }
            }
            h.word(p.mean_gap_s.to_bits());
            h.word(p.parallel as u64);
        };
        h.word(self.differentiation.len() as u64);
        for (l, diff) in &self.differentiation {
            h.word(l.index() as u64);
            match diff {
                Differentiation::None => h.word(0),
                Differentiation::Policing {
                    class,
                    rate_bps,
                    burst_bytes,
                } => {
                    h.word(1);
                    h.word(*class as u64);
                    h.word(rate_bps.to_bits());
                    h.word(burst_bytes.to_bits());
                }
                Differentiation::Shaping { lanes } => {
                    h.word(2);
                    h.word(lanes.len() as u64);
                    for lane in lanes {
                        h.word(lane.class as u64);
                        h.word(lane.rate_bps.to_bits());
                        h.word(lane.burst_bytes.to_bits());
                        h.word(lane.buffer_bytes);
                    }
                }
            }
        }
        // Traffic.
        h.word(self.path_traffic.len() as u64);
        for (p, profile) in &self.path_traffic {
            h.word(p.index() as u64);
            hash_profile(&mut h, profile);
        }
        h.word(self.background.len() as u64);
        for bg in &self.background {
            h.word(bg.links.len() as u64);
            for l in &bg.links {
                h.word(l.index() as u64);
            }
            h.word(bg.profiles.len() as u64);
            for profile in &bg.profiles {
                hash_profile(&mut h, profile);
            }
        }
        // Queue overrides.
        h.word(self.queue_overrides.len() as u64);
        for (l, q) in &self.queue_overrides {
            h.word(l.index() as u64);
            match q {
                QueueOverride::Bytes(b) => {
                    h.word(1);
                    h.word(*b);
                }
                QueueOverride::Packets(n) => {
                    h.word(2);
                    h.word(*n as u64);
                }
            }
        }
        // Simulation window (seed excluded by design).
        h.word(self.measurement.duration_s.to_bits());
        h.word(self.measurement.interval_s.to_bits());
        match self.measurement.warmup_s {
            None => h.word(0),
            Some(w) => {
                h.word(1);
                h.word(w.to_bits());
            }
        }
        // Delay recording shapes the measured set (a v2 delay grid rides
        // along), so it moves the fingerprint — but only when enabled, which
        // keeps every pre-delay fingerprint unchanged. The delay *feature*
        // is an inference knob (like the loss threshold) and stays out.
        if self.measurement.record_delay {
            h.word(1);
        }
        h.0
    }

    /// Same scenario, different simulation seed — the unit of a seed sweep.
    pub fn with_seed(&self, seed: u64) -> Scenario {
        let mut s = self.clone();
        s.measurement.seed = seed;
        s
    }

    /// Compiles into a runnable [`Experiment`].
    pub fn compile(&self) -> Experiment {
        Experiment::new(self.clone())
    }

    /// Convenience: compile and run serially.
    pub fn run(&self) -> crate::ExperimentOutcome {
        self.compile().run()
    }
}

/// Builder for [`Scenario`]; validation happens once, in [`build`].
///
/// [`build`]: ScenarioBuilder::build
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Wraps an existing scenario so it can be edited and *re-validated* —
    /// the entry point for mutation-style tests and programmatic sweeps that
    /// tweak raw [`Scenario`] fields:
    ///
    /// ```
    /// use nni_scenario::{Scenario, ScenarioBuilder, ScenarioError};
    /// use nni_scenario::library::{topology_a_scenario, ExperimentParams};
    /// use nni_emu::CcFleet;
    ///
    /// let mut s = topology_a_scenario(ExperimentParams::default());
    /// s.path_traffic[0].1.cc = CcFleet::Mixed(Vec::new()); // invalid edit
    /// assert_eq!(
    ///     ScenarioBuilder::of(s).build().unwrap_err(),
    ///     ScenarioError::EmptyCcFleet,
    /// );
    /// ```
    pub fn of(scenario: Scenario) -> ScenarioBuilder {
        ScenarioBuilder { scenario }
    }

    /// Sets the performance-class partition (`classes[n]` lists class
    /// `c_{n+1}`'s member paths).
    pub fn classes(mut self, classes: Vec<Vec<PathId>>) -> Self {
        self.scenario.classes = classes;
        self
    }

    /// Places a differentiation mechanism on a link. Repeatable — multi-link
    /// differentiation is first-class, not a special case.
    pub fn differentiate(mut self, link: LinkId, mechanism: Differentiation) -> Self {
        self.scenario.differentiation.push((link, mechanism));
        self
    }

    /// Places pre-assembled `(link, mechanism)` pairs (the shape the
    /// `nni_emu::scenario` convenience constructors produce).
    pub fn differentiate_all(
        mut self,
        mechanisms: impl IntoIterator<Item = (LinkId, Differentiation)>,
    ) -> Self {
        self.scenario.differentiation.extend(mechanisms);
        self
    }

    /// Adds a traffic source on a measured path. Repeatable; a path may
    /// carry several profiles (e.g. a short-flow mix plus a long flow).
    pub fn path_traffic(mut self, path: PathId, profile: TrafficProfile) -> Self {
        self.scenario.path_traffic.push((path, profile));
        self
    }

    /// Adds unmeasured background traffic over an explicit link route.
    pub fn background_traffic(mut self, links: Vec<LinkId>, profiles: Vec<TrafficProfile>) -> Self {
        self.scenario
            .background
            .push(BackgroundTraffic { links, profiles });
        self
    }

    /// Overrides one link's drop-tail queue capacity. Repeatable (one
    /// override per link); links not listed keep the BDP-derived default.
    pub fn queue_override(mut self, link: LinkId, queue: QueueOverride) -> Self {
        self.scenario.queue_overrides.push((link, queue));
        self
    }

    /// Convenience: a byte-sized queue override.
    pub fn queue_bytes(self, link: LinkId, bytes: u64) -> Self {
        self.queue_override(link, QueueOverride::Bytes(bytes))
    }

    /// Sets the measurement window/seed wholesale.
    pub fn measurement(mut self, m: MeasurementConfig) -> Self {
        self.scenario.measurement = m;
        self
    }

    /// Sets the simulated duration.
    pub fn duration_s(mut self, duration_s: f64) -> Self {
        self.scenario.measurement.duration_s = duration_s;
        self
    }

    /// Sets the measurement interval.
    pub fn interval_s(mut self, interval_s: f64) -> Self {
        self.scenario.measurement.interval_s = interval_s;
        self
    }

    /// Sets the loss threshold.
    pub fn loss_threshold(mut self, loss_threshold: f64) -> Self {
        self.scenario.measurement.loss_threshold = loss_threshold;
        self
    }

    /// Sets the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.measurement.seed = seed;
        self
    }

    /// Sets the normalization seed salt (see
    /// [`DEFAULT_NORMALIZE_SALT`]).
    pub fn measurement_salt(mut self, salt: u64) -> Self {
        self.scenario.measurement.normalize_salt = salt;
        self
    }

    /// Enables (or disables) per-packet one-way-delay recording; the
    /// measurement log then carries per-interval delay percentiles and
    /// serializes as a v2 set.
    pub fn record_delay(mut self, record: bool) -> Self {
        self.scenario.measurement.record_delay = record;
        self
    }

    /// Folds a delay-inflation feature into the congestion-free indicator
    /// (joint loss+delay inference) and enables delay recording, which the
    /// feature requires.
    pub fn delay_feature(mut self, feature: nni_core::DelayFeature) -> Self {
        self.scenario.measurement.delay_feature = Some(feature);
        self.scenario.measurement.record_delay = true;
        self
    }

    /// Sets the Algorithm 1 configuration.
    pub fn inference(mut self, cfg: Config) -> Self {
        self.scenario.inference = cfg;
        self
    }

    /// Sets the ground-truth expectation.
    pub fn expect(mut self, expectation: Expectation) -> Self {
        self.scenario.expectation = expectation;
        self
    }

    /// Validates every cross-reference and returns the scenario.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let s = self.scenario;
        let g = &s.topology;
        let m = &s.measurement;
        if !(m.duration_s > 0.0 && m.interval_s > 0.0) {
            return Err(ScenarioError::BadWindow);
        }
        if m.delay_feature.is_some() && !m.record_delay {
            return Err(ScenarioError::DelayFeatureWithoutRecording);
        }
        let mut seen = vec![false; g.path_count()];
        for class in &s.classes {
            for &p in class {
                if p.index() >= g.path_count() {
                    return Err(ScenarioError::UnknownPath(p));
                }
                if seen[p.index()] {
                    return Err(ScenarioError::OverlappingClasses(p));
                }
                seen[p.index()] = true;
            }
        }
        let mut mechanised = vec![false; g.link_count()];
        for (l, diff) in &s.differentiation {
            let l = *l;
            if l.index() >= g.link_count() {
                return Err(ScenarioError::UnknownLink(l));
            }
            if mechanised[l.index()] {
                return Err(ScenarioError::DuplicateDifferentiation(l));
            }
            mechanised[l.index()] = true;
            match diff {
                Differentiation::None => {}
                Differentiation::Policing { rate_bps, .. } => {
                    if rate_bps.is_nan() || *rate_bps <= 0.0 {
                        return Err(ScenarioError::ZeroRatePolicer(l));
                    }
                }
                Differentiation::Shaping { lanes } => {
                    if lanes.is_empty() {
                        return Err(ScenarioError::EmptyShaper(l));
                    }
                    let mut lane_classes: Vec<ClassLabel> = Vec::with_capacity(lanes.len());
                    for lane in lanes {
                        if lane.rate_bps.is_nan() || lane.rate_bps <= 0.0 {
                            return Err(ScenarioError::ZeroRatePolicer(l));
                        }
                        if lane_classes.contains(&lane.class) {
                            return Err(ScenarioError::OverlappingLanes(l));
                        }
                        lane_classes.push(lane.class);
                    }
                }
            }
        }
        for (p, profile) in &s.path_traffic {
            if p.index() >= g.path_count() {
                return Err(ScenarioError::UnknownPath(*p));
            }
            if profile.cc.is_empty() {
                return Err(ScenarioError::EmptyCcFleet);
            }
        }
        for bg in &s.background {
            if bg.links.is_empty() {
                return Err(ScenarioError::EmptyBackgroundRoute);
            }
            for &l in &bg.links {
                if l.index() >= g.link_count() {
                    return Err(ScenarioError::UnknownLink(l));
                }
            }
            for profile in &bg.profiles {
                if profile.cc.is_empty() {
                    return Err(ScenarioError::EmptyCcFleet);
                }
            }
        }
        let mut overridden = vec![false; g.link_count()];
        for &(l, q) in &s.queue_overrides {
            if l.index() >= g.link_count() {
                return Err(ScenarioError::UnknownLink(l));
            }
            if overridden[l.index()] {
                return Err(ScenarioError::DuplicateQueueOverride(l));
            }
            overridden[l.index()] = true;
            if q.is_zero() {
                return Err(ScenarioError::BadQueueOverride(l));
            }
        }
        for &l in &s.expectation.nonneutral_links {
            if l.index() >= g.link_count() {
                return Err(ScenarioError::UnknownLink(l));
            }
        }
        let has_traffic =
            !s.path_traffic.is_empty() || s.background.iter().any(|bg| !bg.profiles.is_empty());
        if !has_traffic {
            return Err(ScenarioError::NoTraffic);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_emu::policer_at_fraction;
    use nni_topology::library::topology_a;

    fn profile() -> TrafficProfile {
        TrafficProfile::pareto_bits(0, CcKind::Cubic, 10e6, 10.0, 4)
    }

    #[test]
    fn builder_validates_and_builds() {
        let paper = topology_a(0.05, 0.05);
        let l5 = paper.topology.link_by_name("l5").unwrap();
        let mech = policer_at_fraction(&paper.topology, l5, 1, 0.2, 0.01);
        let mut b = Scenario::builder("t", paper.topology.clone())
            .classes(paper.classes.clone())
            .differentiate(mech.0, mech.1)
            .expect(Expectation::nonneutral(vec![l5]));
        for p in paper.topology.path_ids() {
            b = b.path_traffic(p, profile());
        }
        let s = b.build().expect("valid scenario");
        assert_eq!(s.path_traffic.len(), 4);
        assert_eq!(s.class_label_count(), 2);
        assert!(s.expectation.expect_flagged);
        assert_eq!(s.class_of(PathId(0)), Some(0));
        assert_eq!(s.class_of(PathId(2)), Some(1));
    }

    #[test]
    fn rejects_duplicate_mechanism_on_one_link() {
        let paper = topology_a(0.05, 0.05);
        let l5 = paper.topology.link_by_name("l5").unwrap();
        let m1 = policer_at_fraction(&paper.topology, l5, 1, 0.2, 0.01);
        let m2 = policer_at_fraction(&paper.topology, l5, 0, 0.3, 0.01);
        let err = Scenario::builder("t", paper.topology.clone())
            .differentiate(m1.0, m1.1)
            .differentiate(m2.0, m2.1)
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::DuplicateDifferentiation(l5));
    }

    #[test]
    fn rejects_unknown_references_and_empty_traffic() {
        let paper = topology_a(0.05, 0.05);
        let err = Scenario::builder("t", paper.topology.clone())
            .path_traffic(PathId(99), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownPath(PathId(99)));

        let err = Scenario::builder("t", paper.topology.clone())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::NoTraffic);

        let err = Scenario::builder("t", paper.topology.clone())
            .classes(vec![vec![PathId(0)], vec![PathId(0)]])
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::OverlappingClasses(PathId(0)));
    }

    #[test]
    fn class_label_count_covers_mechanism_targets() {
        let paper = topology_a(0.05, 0.05);
        let l5 = paper.topology.link_by_name("l5").unwrap();
        let mech = policer_at_fraction(&paper.topology, l5, 3, 0.2, 0.01);
        let s = Scenario::builder("t", paper.topology.clone())
            .differentiate(mech.0, mech.1)
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap();
        assert_eq!(s.class_label_count(), 4);
    }

    #[test]
    fn rejects_invalid_fleets_rates_lanes_and_overrides() {
        let paper = topology_a(0.05, 0.05);
        let l5 = paper.topology.link_by_name("l5").unwrap();

        // Empty CC fleet (path and background traffic alike).
        let empty = profile().with_fleet(CcFleet::Mixed(Vec::new()));
        let err = Scenario::builder("t", paper.topology.clone())
            .path_traffic(PathId(0), empty.clone())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::EmptyCcFleet);
        let err = Scenario::builder("t", paper.topology.clone())
            .background_traffic(vec![l5], vec![empty])
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::EmptyCcFleet);

        // Zero-rate policer.
        let err = Scenario::builder("t", paper.topology.clone())
            .differentiate(
                l5,
                Differentiation::Policing {
                    class: 1,
                    rate_bps: 0.0,
                    burst_bytes: 3000.0,
                },
            )
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroRatePolicer(l5));

        // Overlapping shaper lanes (two lanes, same class).
        let lane = |class: u8| nni_emu::ShapeLaneConfig {
            class,
            rate_bps: 10e6,
            burst_bytes: 3000.0,
            buffer_bytes: 15_000,
        };
        let err = Scenario::builder("t", paper.topology.clone())
            .differentiate(
                l5,
                Differentiation::Shaping {
                    lanes: vec![lane(1), lane(1)],
                },
            )
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::OverlappingLanes(l5));

        // A shaper needs at least one lane.
        let err = Scenario::builder("t", paper.topology.clone())
            .differentiate(l5, Differentiation::Shaping { lanes: Vec::new() })
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::EmptyShaper(l5));

        // Queue overrides: zero capacity, duplicates, unknown links.
        let err = Scenario::builder("t", paper.topology.clone())
            .queue_bytes(l5, 0)
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::BadQueueOverride(l5));
        let err = Scenario::builder("t", paper.topology.clone())
            .queue_bytes(l5, 10_000)
            .queue_override(l5, QueueOverride::Packets(5))
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::DuplicateQueueOverride(l5));
        let bogus = nni_topology::LinkId(99);
        let err = Scenario::builder("t", paper.topology.clone())
            .queue_bytes(bogus, 10_000)
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::UnknownLink(bogus));
    }

    #[test]
    fn builder_of_revalidates_an_edited_scenario() {
        let paper = topology_a(0.05, 0.05);
        let mut s = Scenario::builder("t", paper.topology.clone())
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap();
        // A valid edit re-validates Ok …
        s.measurement.seed = 99;
        let s = ScenarioBuilder::of(s).build().expect("still valid");
        assert_eq!(s.measurement.seed, 99);
        // … an invalid one surfaces as the typed error.
        let mut broken = s.clone();
        broken.path_traffic[0].1.cc = CcFleet::Mixed(Vec::new());
        assert_eq!(
            ScenarioBuilder::of(broken).build().unwrap_err(),
            ScenarioError::EmptyCcFleet
        );
    }

    #[test]
    fn measurement_fingerprint_ignores_inference_axes_only() {
        let paper = topology_a(0.05, 0.05);
        let l5 = paper.topology.link_by_name("l5").unwrap();
        let mech = policer_at_fraction(&paper.topology, l5, 1, 0.2, 0.01);
        let base = Scenario::builder("t", paper.topology.clone())
            .classes(paper.classes.clone())
            .differentiate(mech.0, mech.1)
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap();
        let fp = base.measurement_fingerprint();

        // Inference-side knobs (and the seed, and the name) leave the
        // fingerprint alone — that is what lets a threshold sweep share one
        // simulation.
        let mut s = base.clone();
        s.name = "renamed".into();
        s.measurement.seed ^= 0xFFFF;
        s.measurement.loss_threshold = 0.05;
        s.measurement.normalize_salt = 0x1234;
        s.inference = nni_core::Config::exact();
        s.expectation = Expectation::nonneutral(vec![l5]);
        // The delay feature is inference-side too (needs record_delay to
        // build, but the raw-field edit shows it alone leaves the
        // fingerprint untouched).
        s.measurement.delay_feature = Some(nni_core::DelayFeature::default());
        assert_eq!(s.measurement_fingerprint(), fp);

        // Every measurement-shaping axis moves it.
        let mut s = base.clone();
        s.measurement.duration_s += 1.0;
        assert_ne!(s.measurement_fingerprint(), fp);
        let mut s = base.clone();
        s.measurement.warmup_s = Some(0.5);
        assert_ne!(s.measurement_fingerprint(), fp);
        let mut s = base.clone();
        s.differentiation.clear();
        assert_ne!(s.measurement_fingerprint(), fp);
        let mut s = base.clone();
        s.path_traffic[0].1.parallel += 1;
        assert_ne!(s.measurement_fingerprint(), fp);
        let mut s = base.clone();
        s.queue_overrides.push((l5, QueueOverride::Packets(9)));
        assert_ne!(s.measurement_fingerprint(), fp);
        let mut s = base.clone();
        s.classes.push(vec![]);
        assert_ne!(s.measurement_fingerprint(), fp);
        // Delay recording changes what the emulator measures.
        let mut s = base.clone();
        s.measurement.record_delay = true;
        assert_ne!(s.measurement_fingerprint(), fp);
    }

    #[test]
    fn delay_feature_requires_recording() {
        let paper = topology_a(0.05, 0.05);
        // Raw-field edit: feature without recording is a typed build error.
        let mut s = Scenario::builder("t", paper.topology.clone())
            .path_traffic(PathId(0), profile())
            .build()
            .unwrap();
        s.measurement.delay_feature = Some(nni_core::DelayFeature::default());
        assert_eq!(
            ScenarioBuilder::of(s).build().unwrap_err(),
            ScenarioError::DelayFeatureWithoutRecording
        );
        // The builder setter enables recording alongside the feature.
        let s = Scenario::builder("t", paper.topology.clone())
            .path_traffic(PathId(0), profile())
            .delay_feature(nni_core::DelayFeature::default())
            .build()
            .unwrap();
        assert!(s.measurement.record_delay);
        assert!(s.measurement.delay_feature.is_some());
        // Recording without the feature is fine (loss-only inference over a
        // delay-carrying set).
        let s = Scenario::builder("t", paper.topology.clone())
            .path_traffic(PathId(0), profile())
            .record_delay(true)
            .build()
            .unwrap();
        assert!(s.measurement.record_delay);
        assert!(s.measurement.delay_feature.is_none());
    }

    #[test]
    fn with_seed_only_touches_the_seed() {
        let paper = topology_a(0.05, 0.05);
        let s = Scenario::builder("t", paper.topology.clone())
            .path_traffic(PathId(0), profile())
            .seed(7)
            .build()
            .unwrap();
        let t = s.with_seed(8);
        assert_eq!(t.measurement.seed, 8);
        assert_eq!(t.measurement.duration_s, s.measurement.duration_s);
        assert_eq!(t.name, s.name);
    }
}
