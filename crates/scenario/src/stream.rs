//! Online inference: [`StreamingInference`] re-clusters per closed
//! interval, and [`infer_incremental`] is the batch-shaped wrapper whose
//! result is bit-identical to [`infer`](crate::infer()).
//!
//! Why the verdicts converge *exactly* (the streaming guarantee):
//!
//! 1. a closed interval's congestion-free indicators are a deterministic
//!    function of `(seed, interval, path)` alone, so computing them on
//!    arrival equals computing them in a batch pass;
//! 2. the per-pathset state is two integers (congestion-free and
//!    informative interval counts) accumulated exactly once per interval —
//!    integer addition in arrival order equals a batch recount;
//! 3. the performance numbers and everything after them (pair estimates,
//!    unsolvability, 2-means, redundancy removal) are pure functions
//!    re-run from those integers through the *same* code path batch
//!    inference uses ([`identify_scores`] over the same [`IdentifyPlan`]).
//!
//! So at every watermark `T`, [`StreamingInference::verdict`] equals
//! `infer` over the log truncated to `T` intervals — checkable, and
//! checked by `tests/streaming_convergence.rs`.

use nni_core::{identify_scores, IdentifyPlan, InferenceResult};
use nni_measure::{MeasurementLog, MeasurementSet, NormalizeConfig, PathsetHandle, SlidingCounts};
use nni_topology::Topology;

use crate::infer::InferenceConfig;

/// Incremental Algorithm 1 + 2 over a growing measurement log.
///
/// Construction precomputes the slice plan and registers every
/// normalization group and pathset with a [`SlidingCounts`]; each
/// [`advance`](StreamingInference::advance) folds newly closed intervals
/// into integer counters (one Algorithm 2 evaluation per group per
/// interval — *not* a full recompute), and
/// [`verdict`](StreamingInference::verdict) re-runs only the cheap
/// decision half.
#[derive(Debug, Clone)]
pub struct StreamingInference {
    cfg: InferenceConfig,
    plan: IdentifyPlan,
    counts: SlidingCounts,
    /// Per slice, per pathset — aligned with the plan's slice order and
    /// each slice's pathset order, exactly the `y` layout
    /// [`identify_scores`] expects.
    handles: Vec<Vec<PathsetHandle>>,
}

impl StreamingInference {
    /// Full-history streaming state: verdicts converge to batch inference
    /// over the entire log.
    pub fn new(topology: &Topology, seed: u64, cfg: &InferenceConfig) -> StreamingInference {
        StreamingInference::build(topology, seed, cfg, None)
    }

    /// Sliding-window variant: verdicts reflect only the last `window`
    /// closed intervals — the monitoring mode, where old evidence ages
    /// out. (Batch equivalence then holds against a window-truncated log,
    /// not the full history.)
    pub fn windowed(
        topology: &Topology,
        seed: u64,
        cfg: &InferenceConfig,
        window: usize,
    ) -> StreamingInference {
        StreamingInference::build(topology, seed, cfg, Some(window))
    }

    fn build(
        topology: &Topology,
        seed: u64,
        cfg: &InferenceConfig,
        window: Option<usize>,
    ) -> StreamingInference {
        let plan = IdentifyPlan::new(topology, &cfg.algorithm);
        // Streaming inference is loss-only by design: the joint indicator's
        // delay baseline is a min over the *whole* log (and per-interval
        // percentiles are order statistics, so they cannot be folded
        // incrementally) — a delay feature here would silently diverge from
        // batch. `MergeError::DelayNotMergeable` enforces the same boundary
        // on the vantage-merge side.
        let ncfg = NormalizeConfig {
            loss_threshold: cfg.loss_threshold,
            seed: seed ^ cfg.normalize_salt,
            delay: None,
        };
        let mut counts = match window {
            Some(w) => SlidingCounts::with_window(ncfg, w),
            None => SlidingCounts::new(ncfg),
        };
        let handles = plan
            .slices()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let gid = counts.register_group(plan.group(i));
                s.pathsets
                    .iter()
                    .map(|ps| counts.register_pathset(gid, ps))
                    .collect()
            })
            .collect();
        StreamingInference {
            cfg: *cfg,
            plan,
            counts,
            handles,
        }
    }

    /// Intervals consumed so far (the verdict watermark).
    pub fn consumed(&self) -> usize {
        self.counts.consumed()
    }

    /// The sliding window, if any.
    pub fn window(&self) -> Option<usize> {
        self.counts.window()
    }

    /// Folds closed intervals `consumed..through` of `log` into the
    /// counters. `log` must be the same measurement stream across calls
    /// (same interval grid and path order); already-consumed intervals
    /// must not have changed — if they have (a multi-vantage merge),
    /// [`rebase`](StreamingInference::rebase) first.
    pub fn advance(&mut self, log: &MeasurementLog, through: usize) {
        self.counts.advance(log, through);
    }

    /// Forgets all consumed intervals, keeping the precomputed plan and
    /// registrations — the exact fallback for history rewrites: after a
    /// [`MeasurementLog::merge`] the caller rebases and re-advances over
    /// the merged log, landing on exactly the verdict batch inference
    /// computes over it.
    pub fn rebase(&mut self) {
        self.counts.rebase();
    }

    /// The current verdict: Algorithm 1's decision half over the
    /// accumulated counters. At watermark `T` (unwindowed) this is
    /// bit-identical to batch [`infer`](crate::infer()) over the log's
    /// first `T` intervals.
    pub fn verdict(&self) -> InferenceResult {
        let ys: Vec<Vec<f64>> = self
            .handles
            .iter()
            .map(|hs| hs.iter().map(|&h| self.counts.perf(h)).collect())
            .collect();
        identify_scores(&self.plan, &ys, self.cfg.algorithm)
    }
}

/// Batch-shaped incremental inference: feeds the set's log one interval at
/// a time through a [`StreamingInference`] and returns the final verdict.
/// Bit-identical to [`infer`](crate::infer()) on every input — the
/// convergence guarantee behind the streaming subsystem, gated per-release
/// by `tests/streaming_convergence.rs`.
pub fn infer_incremental(set: &MeasurementSet, cfg: &InferenceConfig) -> InferenceResult {
    let mut live = StreamingInference::new(&set.topology, set.provenance.seed, cfg);
    for t in 0..set.log.interval_count() {
        live.advance(&set.log, t + 1);
    }
    live.verdict()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};
    use nni_topology::PathId;

    fn recorded_set() -> MeasurementSet {
        let mut s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 6.0,
            ..ExperimentParams::default()
        });
        // Keep 50 post-warmup intervals (the emulator default warm-up
        // would leave only 10).
        s.measurement.warmup_s = Some(1.0);
        s.compile().simulate()
    }

    #[test]
    fn incremental_equals_batch() {
        let set = recorded_set();
        let cfg = InferenceConfig::default();
        let batch = infer(&set, &cfg);
        let streamed = infer_incremental(&set, &cfg);
        assert_eq!(streamed, batch);
        assert_eq!(streamed.fingerprint(), batch.fingerprint());
    }

    #[test]
    fn every_prefix_verdict_is_checkable_against_batch() {
        let set = recorded_set();
        let cfg = InferenceConfig::default();
        let mut live = StreamingInference::new(&set.topology, set.provenance.seed, &cfg);
        for through in 1..=set.log.interval_count() {
            live.advance(&set.log, through);
            // Batch inference over the same closed prefix.
            let mut prefix = MeasurementLog::new(set.log.path_count(), set.log.interval_s());
            for t in 0..through {
                for p in 0..set.log.path_count() {
                    prefix.record_sent(t, PathId(p), set.log.sent(t, PathId(p)));
                    prefix.record_lost(t, PathId(p), set.log.lost(t, PathId(p)));
                }
            }
            let batch_set = MeasurementSet {
                topology: set.topology.clone(),
                classes: set.classes.clone(),
                log: prefix,
                provenance: set.provenance.clone(),
            };
            assert_eq!(
                live.verdict().fingerprint(),
                infer(&batch_set, &cfg).fingerprint(),
                "verdict diverged at watermark {through}"
            );
        }
    }

    #[test]
    fn rebase_after_merge_matches_batch_over_merged_log() {
        let set = recorded_set();
        let cfg = InferenceConfig::default();
        // Split the log into two "vantages" by parity of interval.
        let n = set.log.path_count();
        let mut a = MeasurementLog::new(n, set.log.interval_s());
        let mut b = MeasurementLog::new(n, set.log.interval_s());
        for t in 0..set.log.interval_count() {
            let dst = if t % 2 == 0 { &mut a } else { &mut b };
            for p in 0..n {
                dst.record_sent(t, PathId(p), set.log.sent(t, PathId(p)));
                dst.record_lost(t, PathId(p), set.log.lost(t, PathId(p)));
            }
            // Materialize the interval on the other vantage too.
            let other = if t % 2 == 0 { &mut b } else { &mut a };
            other.record_sent(t, PathId(0), 0);
        }

        let mut live = StreamingInference::new(&set.topology, set.provenance.seed, &cfg);
        live.advance(&a, a.interval_count());
        // Vantage B arrives: merged history rewrites consumed intervals.
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        live.rebase();
        live.advance(&merged, merged.interval_count());

        assert_eq!(merged, set.log, "vantage split loses nothing");
        assert_eq!(
            live.verdict().fingerprint(),
            infer(&set, &cfg).fingerprint()
        );
    }

    #[test]
    fn windowed_verdict_matches_batch_over_the_window() {
        let set = recorded_set();
        let cfg = InferenceConfig::default();
        let w = 20;
        let mut live = StreamingInference::windowed(&set.topology, set.provenance.seed, &cfg, w);
        assert_eq!(live.window(), Some(w));
        let t_max = set.log.interval_count();
        assert!(t_max > w, "need more intervals than the window");
        live.advance(&set.log, t_max);

        // The batch comparison must see the same (interval, path) RNG
        // keys, so the window is expressed as zeroed-out old intervals,
        // not a shifted log.
        let mut tail_log = MeasurementLog::new(set.log.path_count(), set.log.interval_s());
        for t in (t_max - w)..t_max {
            for p in 0..set.log.path_count() {
                tail_log.record_sent(t, PathId(p), set.log.sent(t, PathId(p)));
                tail_log.record_lost(t, PathId(p), set.log.lost(t, PathId(p)));
            }
        }
        let tail_set = MeasurementSet {
            topology: set.topology.clone(),
            classes: set.classes.clone(),
            log: tail_log,
            provenance: set.provenance.clone(),
        };
        assert_eq!(
            live.verdict().fingerprint(),
            infer(&tail_set, &cfg).fingerprint()
        );
    }
}
