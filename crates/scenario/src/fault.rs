//! [`FaultPlan`]: deterministic, seeded fault injection for the chaos
//! harness.
//!
//! A plan is a set of *rates* (probabilities in `[0, 1]`) for the failure
//! modes the robustness layers must survive — worker hangs, slow answers,
//! aborts before/after the result frame, torn frame writes, bit-flipped
//! checksums, delayed segment spills — plus a seed that makes every draw a
//! pure function of `(seed, fault kind, job token)`. The same plan over the
//! same population injects the same faults on every run and on every
//! *retry*, which is what lets `tests/chaos.rs` predict the exact
//! quarantine set instead of asserting on vague counts.
//!
//! Transport is one environment variable, [`FAULT_PLAN_ENV`]
//! (`NNI_FAULT_PLAN`), holding the [`FaultPlan::to_env`] encoding — the
//! same pattern as `NNI_WORKER_CRASH_ONCE`, generalized. A worker probes
//! the variable once; when it is unset the hooks cost one branch on a
//! cached `None` (zero overhead in production, gated by the `perf` bench
//! trajectory).
//!
//! # Job tokens
//!
//! Draws key on a *job token* — [`job_token`] over the scenario's
//! measurement fingerprint and seed — not on the wire job id. Wire ids are
//! batch-relative (a daemon that parks one job renumbers the next batch),
//! while the token names the work itself: a poisoned scenario is poisoned
//! on every attempt, in every batch, in every process, until a human
//! removes it from the spool.
//!
//! # One-shot transients
//!
//! Poison faults fire on every attempt — that is what makes them poison.
//! Every other fault is *transient*: it should fire once and let the retry
//! succeed, proving the recovery path. With a `state` directory configured,
//! a transient claims a token file (atomic `create_new`) before firing;
//! the second attempt finds the token and runs clean. Without a state
//! directory transients fire on every attempt — useful for forcing an
//! attempt-budget exhaustion in a test.

use std::path::{Path, PathBuf};

use nni_measure::Fnv;

/// Environment variable carrying a [`FaultPlan::to_env`] encoding into
/// worker subprocesses (and the daemon's spill path).
pub const FAULT_PLAN_ENV: &str = "NNI_FAULT_PLAN";

/// The fault kinds a plan can inject into the worker protocol. At most one
/// transient fault is drawn per job (cumulative buckets over one roll), so
/// a job's failure mode is as deterministic as its poison status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Abort before answering (the parent sees a clean EOF mid-batch).
    CrashBefore,
    /// Answer correctly, then abort (the *next* job on this worker sees a
    /// broken pipe).
    CrashAfter,
    /// Write half the result frame, then abort (mid-frame EOF).
    TornFrame,
    /// Flip a bit in the result frame's FNV trailer (checksum mismatch).
    BitFlip,
    /// Sleep past the parent's job timeout before answering.
    Hang,
    /// Answer late but within the timeout.
    Slow,
}

/// A seeded description of which faults to inject at what rates.
///
/// All rate fields are probabilities in `[0, 1]`; values outside clamp at
/// draw time. Construct with struct-update syntax over [`FaultPlan::seeded`]
/// and ship through the environment with [`FaultPlan::to_env`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every draw; two plans with different seeds poison
    /// different jobs.
    pub seed: u64,
    /// Rate of [`Fault::CrashBefore`].
    pub crash_before: f64,
    /// Rate of [`Fault::CrashAfter`].
    pub crash_after: f64,
    /// Rate of [`Fault::TornFrame`].
    pub torn: f64,
    /// Rate of [`Fault::BitFlip`].
    pub bitflip: f64,
    /// Rate of [`Fault::Hang`].
    pub hang: f64,
    /// Rate of [`Fault::Slow`].
    pub slow: f64,
    /// Rate of poison jobs: abort before answering on *every* attempt.
    pub poison: f64,
    /// How long a hung worker sleeps (must exceed the parent's job
    /// timeout for the hang to be observed as one).
    pub hang_ms: u64,
    /// How long a slow worker sleeps (must stay inside the job timeout).
    pub slow_ms: u64,
    /// Delay the daemon adds before each segment spill — exercises
    /// followers against slow producers.
    pub spill_delay_ms: u64,
    /// Directory of one-shot claim tokens; `None` means transients fire
    /// on every attempt.
    pub state: Option<PathBuf>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            crash_before: 0.0,
            crash_after: 0.0,
            torn: 0.0,
            bitflip: 0.0,
            hang: 0.0,
            slow: 0.0,
            poison: 0.0,
            hang_ms: 120_000,
            slow_ms: 50,
            spill_delay_ms: 0,
            state: None,
        }
    }
}

/// The token all fault draws key on: a stable name for one unit of work,
/// derived from the scenario's measurement fingerprint and seed (not the
/// batch-relative wire job id).
pub fn job_token(measurement_fingerprint: u64, seed: u64) -> u64 {
    let mut h = Fnv::new();
    h.word(measurement_fingerprint);
    h.word(seed);
    h.0
}

/// A malformed [`FAULT_PLAN_ENV`] value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError {
    /// The offending `key=value` entry.
    pub entry: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl std::fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault-plan entry {:?}: {}", self.entry, self.reason)
    }
}

impl std::error::Error for FaultPlanParseError {}

impl FaultPlan {
    /// A plan with the given seed and every rate at zero.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether any fault can fire at all — the one branch production pays.
    pub fn active(&self) -> bool {
        self.crash_before > 0.0
            || self.crash_after > 0.0
            || self.torn > 0.0
            || self.bitflip > 0.0
            || self.hang > 0.0
            || self.slow > 0.0
            || self.poison > 0.0
            || self.spill_delay_ms > 0
    }

    /// A uniform draw in `[0, 1)` — a pure function of the plan seed, a
    /// per-kind salt, and the job token.
    fn roll(&self, salt: &str, token: u64) -> f64 {
        let mut h = Fnv::new();
        h.word(self.seed);
        for b in salt.bytes() {
            h.byte(b);
        }
        h.word(token);
        (h.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether this job is poisoned: it aborts before answering on every
    /// attempt, exhausts its budget, and must be quarantined.
    pub fn poisoned(&self, token: u64) -> bool {
        self.poison > 0.0 && self.roll("poison", token) < self.poison.min(1.0)
    }

    /// The transient fault (if any) drawn for this job. One roll, stacked
    /// buckets — at most one transient per job. Poison is checked
    /// separately and wins.
    pub fn transient(&self, token: u64) -> Option<Fault> {
        let roll = self.roll("transient", token);
        let buckets = [
            (self.crash_before, Fault::CrashBefore),
            (self.crash_after, Fault::CrashAfter),
            (self.torn, Fault::TornFrame),
            (self.bitflip, Fault::BitFlip),
            (self.hang, Fault::Hang),
            (self.slow, Fault::Slow),
        ];
        let mut acc = 0.0;
        for (rate, fault) in buckets {
            acc += rate.clamp(0.0, 1.0);
            if roll < acc {
                return Some(fault);
            }
        }
        None
    }

    /// Claims the one-shot right to fire a transient for this job. With a
    /// `state` directory the claim is an atomic token-file create: the
    /// first attempt fires, retries run clean. Without one, every attempt
    /// fires.
    pub fn claim(&self, token: u64) -> bool {
        let Some(dir) = &self.state else {
            return true;
        };
        let _ = std::fs::create_dir_all(dir);
        std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(dir.join(format!("claim-{token:016x}")))
            .is_ok()
    }

    /// Encodes the plan as the `key=value …` string [`parse`](Self::parse)
    /// accepts — the [`FAULT_PLAN_ENV`] payload.
    pub fn to_env(&self) -> String {
        let mut s = format!(
            "seed={} crash_before={} crash_after={} torn={} bitflip={} hang={} slow={} \
             poison={} hang_ms={} slow_ms={} spill_delay_ms={}",
            self.seed,
            self.crash_before,
            self.crash_after,
            self.torn,
            self.bitflip,
            self.hang,
            self.slow,
            self.poison,
            self.hang_ms,
            self.slow_ms,
            self.spill_delay_ms,
        );
        if let Some(state) = &self.state {
            s.push_str(" state=");
            s.push_str(&state.display().to_string());
        }
        s
    }

    /// Parses a `key=value …` encoding (whitespace-separated, unknown keys
    /// rejected so typos fail loudly).
    pub fn parse(s: &str) -> Result<FaultPlan, FaultPlanParseError> {
        let err = |entry: &str, reason: &'static str| FaultPlanParseError {
            entry: entry.to_string(),
            reason,
        };
        let mut plan = FaultPlan::default();
        for entry in s.split_whitespace() {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| err(entry, "expected key=value"))?;
            let rate = |plan_field: &mut f64| -> Result<(), FaultPlanParseError> {
                *plan_field = value
                    .parse::<f64>()
                    .map_err(|_| err(entry, "rate is not a number"))?;
                Ok(())
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| err(entry, "bad seed"))?;
                }
                "crash_before" => rate(&mut plan.crash_before)?,
                "crash_after" => rate(&mut plan.crash_after)?,
                "torn" => rate(&mut plan.torn)?,
                "bitflip" => rate(&mut plan.bitflip)?,
                "hang" => rate(&mut plan.hang)?,
                "slow" => rate(&mut plan.slow)?,
                "poison" => rate(&mut plan.poison)?,
                "hang_ms" => {
                    plan.hang_ms = value.parse().map_err(|_| err(entry, "bad duration"))?;
                }
                "slow_ms" => {
                    plan.slow_ms = value.parse().map_err(|_| err(entry, "bad duration"))?;
                }
                "spill_delay_ms" => {
                    plan.spill_delay_ms = value.parse().map_err(|_| err(entry, "bad duration"))?;
                }
                "state" => plan.state = Some(PathBuf::from(value)),
                _ => return Err(err(entry, "unknown key")),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from [`FAULT_PLAN_ENV`]; `None` when unset. A value
    /// that fails to parse panics — the variable is a test-infrastructure
    /// knob and a typo must not silently disable a chaos run.
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var(FAULT_PLAN_ENV).ok()?;
        match FaultPlan::parse(&raw) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("{FAULT_PLAN_ENV}: {e}"),
        }
    }
}

/// Best-effort cleanup of a plan's claim-token directory between runs.
pub fn reset_claims(state: &Path) {
    let _ = std::fs::remove_dir_all(state);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan {
            poison: 0.3,
            ..FaultPlan::seeded(42)
        };
        let poisoned: Vec<u64> = (0..100).filter(|&t| a.poisoned(t)).collect();
        assert_eq!(
            poisoned,
            (0..100).filter(|&t| a.poisoned(t)).collect::<Vec<_>>(),
            "same plan, same draws"
        );
        assert!(!poisoned.is_empty() && poisoned.len() < 100, "rate bites");
        let b = FaultPlan {
            poison: 0.3,
            ..FaultPlan::seeded(43)
        };
        assert_ne!(
            poisoned,
            (0..100).filter(|&t| b.poisoned(t)).collect::<Vec<_>>(),
            "different seed, different poison set"
        );
    }

    #[test]
    fn transient_buckets_cover_all_kinds_and_respect_zero() {
        assert_eq!(FaultPlan::seeded(1).transient(7), None, "all-zero plan");
        let plan = FaultPlan {
            crash_before: 0.17,
            crash_after: 0.17,
            torn: 0.17,
            bitflip: 0.17,
            hang: 0.16,
            slow: 0.16,
            ..FaultPlan::seeded(9)
        };
        let mut seen = std::collections::HashSet::new();
        for t in 0..500 {
            if let Some(f) = plan.transient(t) {
                seen.insert(format!("{f:?}"));
            }
        }
        assert_eq!(seen.len(), 6, "every bucket reachable: {seen:?}");
    }

    #[test]
    fn env_encoding_round_trips() {
        let plan = FaultPlan {
            crash_before: 0.125,
            bitflip: 0.5,
            hang_ms: 7_000,
            slow_ms: 3,
            spill_delay_ms: 11,
            state: Some(PathBuf::from("/tmp/claims")),
            ..FaultPlan::seeded(42)
        };
        assert_eq!(FaultPlan::parse(&plan.to_env()), Ok(plan));
        assert!(FaultPlan::parse("poison=0.1 typo=1").is_err());
        assert!(FaultPlan::parse("poison=abc").is_err());
    }

    #[test]
    fn claims_fire_once_with_a_state_dir() {
        let dir = std::env::temp_dir().join(format!("nni-fault-claims-{}", std::process::id()));
        reset_claims(&dir);
        let plan = FaultPlan {
            state: Some(dir.clone()),
            ..FaultPlan::seeded(1)
        };
        assert!(plan.claim(5), "first attempt fires");
        assert!(!plan.claim(5), "second attempt runs clean");
        assert!(plan.claim(6), "independent per job token");
        let stateless = FaultPlan::seeded(1);
        assert!(stateless.claim(5) && stateless.claim(5), "no dir: always");
        reset_claims(&dir);
    }

    #[test]
    fn inactive_plans_say_so() {
        assert!(!FaultPlan::seeded(3).active());
        assert!(FaultPlan {
            slow: 0.1,
            ..FaultPlan::seeded(3)
        }
        .active());
    }
}
