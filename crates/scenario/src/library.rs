//! Ready-made scenarios: the paper's evaluation setups (topologies A and B)
//! and variants beyond Table 2 that the scenario API makes one-liners —
//! multi-link differentiation, dual policers, asymmetric-RTT controls.
//!
//! Everything here compiles down to the same [`Scenario`] type, so every
//! inference method (Algorithm 1 and the tomography baselines of
//! [`crate::baselines`]) consumes identical inputs.

use nni_emu::{
    policer_at_fraction, shaper_at_fraction, CcFleet, CcKind, Differentiation, ShapeLaneConfig,
    SizeDist,
};
use nni_topology::library::{topology_a, topology_b, PaperTopology, BOTTLENECK_BPS};
use nni_topology::PathId;

use crate::spec::{
    Expectation, MeasurementConfig, QueueOverride, Scenario, ScenarioBuilder, TrafficProfile,
};
use crate::sweep::SweepSet;

/// What the shared link of topology A does (Table 2's "Link l5 behavior").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// Plain FIFO.
    Neutral,
    /// Policing class 2 at the given fraction of capacity.
    Policing(f64),
    /// Shaping class 2 at the fraction, class 1 at one minus it.
    Shaping(f64),
}

impl Mechanism {
    fn label(&self) -> String {
        match self {
            Mechanism::Neutral => "neutral".into(),
            Mechanism::Policing(f) => format!("policing {:.0}%", f * 100.0),
            Mechanism::Shaping(f) => format!("shaping {:.0}%", f * 100.0),
        }
    }
}

/// Parameters of one topology-A experiment (Table 1 defaults; durations
/// shortened per DESIGN.md, `--duration` restores the paper's 600 s).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Shared-link behaviour.
    pub mechanism: Mechanism,
    /// Mean flow size of class-1 paths (bits).
    pub flow_size_c1_bits: f64,
    /// Mean flow size of class-2 paths (bits).
    pub flow_size_c2_bits: f64,
    /// Propagation RTT of class-1 paths (seconds).
    pub rtt_c1_s: f64,
    /// Propagation RTT of class-2 paths (seconds).
    pub rtt_c2_s: f64,
    /// Congestion control of class-1 paths.
    pub cc_c1: CcKind,
    /// Congestion control of class-2 paths.
    pub cc_c2: CcKind,
    /// Parallel flows per path.
    pub flows_per_path: usize,
    /// Mean inter-flow gap (seconds).
    pub mean_gap_s: f64,
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Measurement interval (seconds).
    pub interval_s: f64,
    /// Loss threshold.
    pub loss_threshold: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            mechanism: Mechanism::Neutral,
            flow_size_c1_bits: 10e6,
            flow_size_c2_bits: 10e6,
            rtt_c1_s: 0.05,
            rtt_c2_s: 0.05,
            cc_c1: CcKind::Cubic,
            cc_c2: CcKind::Cubic,
            flows_per_path: 20,
            mean_gap_s: 10.0,
            duration_s: 120.0,
            interval_s: 0.1,
            loss_threshold: 0.01,
            seed: 42,
        }
    }
}

/// The paper's Figure 7 dumbbell with the given parameters, as a scenario.
pub fn topology_a_scenario(p: ExperimentParams) -> Scenario {
    let paper: PaperTopology = topology_a(p.rtt_c1_s, p.rtt_c2_s);
    let g = &paper.topology;
    let l5 = paper.link_named("l5");

    let mut b = Scenario::builder(
        format!("topology-a {}", p.mechanism.label()),
        paper.topology.clone(),
    )
    .classes(paper.classes.clone())
    .duration_s(p.duration_s)
    .interval_s(p.interval_s)
    .loss_threshold(p.loss_threshold)
    .seed(p.seed);

    b = match p.mechanism {
        Mechanism::Neutral => b,
        Mechanism::Policing(frac) => {
            let (l, d) = policer_at_fraction(g, l5, 1, frac, 0.01);
            b.differentiate(l, d)
        }
        Mechanism::Shaping(frac) => {
            let (l, d) = shaper_at_fraction(g, l5, frac);
            b.differentiate(l, d)
        }
    };

    for path in g.path_ids() {
        let is_c2 = paper.classes[1].contains(&path);
        let (bits, cc) = if is_c2 {
            (p.flow_size_c2_bits, p.cc_c2)
        } else {
            (p.flow_size_c1_bits, p.cc_c1)
        };
        b = b.path_traffic(
            path,
            TrafficProfile::pareto_bits(u8::from(is_c2), cc, bits, p.mean_gap_s, p.flows_per_path),
        );
    }

    // Ground truth: the network differentiates unless neutral — with the one
    // §6.3 exception: a 50/50 shaper throttles both classes identically and
    // is behaviourally neutral.
    let expectation = match p.mechanism {
        Mechanism::Neutral => Expectation::neutral(),
        Mechanism::Shaping(frac) if (frac - 0.5).abs() < 1e-9 => Expectation::neutral(),
        _ => Expectation::nonneutral(vec![l5]),
    };

    b.expect(expectation)
        .build()
        .expect("library scenario is valid")
}

/// Parameters of the topology B experiment (§6.4).
#[derive(Debug, Clone, Copy)]
pub struct TopologyBParams {
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Policing rate as a fraction of link capacity.
    pub policing_fraction: f64,
    /// Loss threshold.
    pub loss_threshold: f64,
    /// Measurement interval (seconds).
    pub interval_s: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TopologyBParams {
    fn default() -> Self {
        TopologyBParams {
            duration_s: 300.0,
            policing_fraction: 0.2,
            loss_threshold: 0.01,
            interval_s: 0.1,
            seed: 7,
        }
    }
}

/// Shared glue of every topology-B variant: Table 3 traffic on the measured
/// paths plus the three white-host background routes. The caller adds
/// differentiation and the expectation.
fn topology_b_base(name: &str, p: TopologyBParams, paper: &PaperTopology) -> ScenarioBuilder {
    let mut b = Scenario::builder(name, paper.topology.clone())
        .classes(paper.classes.clone())
        .duration_s(p.duration_s)
        .interval_s(p.interval_s)
        .loss_threshold(p.loss_threshold)
        .seed(p.seed)
        .measurement_salt(0xBEEF);

    // Table 3 traffic. Dark gray (class c1): 1 Mb + 10 Mb + 40 Mb parallel
    // flows; light gray (class c2): one 10 Gb flow plus medium churn (the
    // BitTorrent-like restarts of §1's motivation, whose slow-starts into
    // the policers make same-class loss co-occurrence observable).
    for &path in &paper.classes[0] {
        for profile in short_flow_mix_profiles(0) {
            b = b.path_traffic(path, profile);
        }
    }
    for &path in &paper.classes[1] {
        b = b.path_traffic(path, long_flow_profile(1)).path_traffic(
            path,
            TrafficProfile::pareto_bits(1, CcKind::Cubic, 40e6, 2.0, 3),
        );
    }

    // White hosts: unmeasured background routes carrying both mixes; the
    // first drives the neutral l13 near capacity (Figure 11's pair).
    let bg_routes = [
        paper.links_named(&["l21", "l13", "l17"]),
        paper.links_named(&["l21", "l6", "l15", "l16"]),
        paper.links_named(&["l23", "l8", "l11", "l19"]),
    ];
    for links in bg_routes {
        let mut profiles = short_flow_mix_profiles(0);
        profiles.push(long_flow_profile(1));
        b = b.background_traffic(links, profiles);
    }
    b
}

/// Strips the route from an emu-level [`TrafficSpec`], leaving the
/// route-agnostic profile — so the Table 3 traffic constants live only in
/// `nni_emu::traffic`.
fn profile_of(spec: &nni_emu::TrafficSpec) -> TrafficProfile {
    TrafficProfile {
        class: spec.class,
        cc: spec.cc.clone(),
        size: spec.size,
        mean_gap_s: spec.mean_gap_s,
        parallel: spec.parallel,
    }
}

fn short_flow_mix_profiles(class: u8) -> Vec<TrafficProfile> {
    nni_emu::short_flow_mix(nni_emu::RouteId(0), class, CcKind::Cubic)
        .iter()
        .map(profile_of)
        .collect()
}

fn long_flow_profile(class: u8) -> TrafficProfile {
    profile_of(&nni_emu::long_flow(
        nni_emu::RouteId(0),
        class,
        CcKind::Cubic,
    ))
}

/// The paper's §6.4 experiment: topology B with policers on `l5`, `l14`, and
/// `l20` targeting the long-flow class.
///
/// Bursts differ per device (as they would across real vendors), which also
/// desynchronises the policers' token cycles — identically configured
/// policers otherwise lock their loss episodes together and violate the
/// link-independence assumption (§2.2, assumption #2).
pub fn topology_b_scenario(p: TopologyBParams) -> Scenario {
    let paper = topology_b();
    let bursts = [0.025, 0.03, 0.035];
    let mut b = topology_b_base("topology-b 3-policer", p, &paper);
    for (&l, burst) in paper.nonneutral_links.iter().zip(bursts) {
        let (link, diff) = policer_at_fraction(&paper.topology, l, 1, p.policing_fraction, burst);
        b = b.differentiate(link, diff);
    }
    b.expect(Expectation::nonneutral(paper.nonneutral_links.clone()))
        .build()
        .expect("library scenario is valid")
}

/// Beyond Table 2 #1 — **dual-policer topology B**: only the two tier-2
/// ingress policers (`l14`, `l20`) are active, at different rates, while the
/// backbone `l5` stays neutral. Exercises multi-violation localization
/// without the widely shared backbone sequence.
pub fn dual_policer_topology_b(p: TopologyBParams) -> Scenario {
    let paper = topology_b();
    let g = &paper.topology;
    let l14 = paper.link_named("l14");
    let l20 = paper.link_named("l20");
    let (a, da) = policer_at_fraction(g, l14, 1, p.policing_fraction, 0.03);
    let (c, dc) = policer_at_fraction(g, l20, 1, 1.5 * p.policing_fraction, 0.035);
    topology_b_base("topology-b dual-policer", p, &paper)
        .differentiate(a, da)
        .differentiate(c, dc)
        .expect(Expectation::nonneutral(vec![l14, l20]))
        .build()
        .expect("library scenario is valid")
}

/// Beyond Table 2 #2 — **asymmetric-RTT neutral control**: topology A with
/// no mechanism but very different class RTTs (50 ms vs 200 ms) under heavy
/// aggregation. TCP's RTT unfairness skews throughput between the classes;
/// a sound detector must still answer "neutral".
pub fn asymmetric_rtt_neutral(duration_s: f64, seed: u64) -> Scenario {
    let mut s = topology_a_scenario(ExperimentParams {
        rtt_c1_s: 0.05,
        rtt_c2_s: 0.2,
        flows_per_path: 70,
        duration_s,
        seed,
        ..ExperimentParams::default()
    });
    s.name = "topology-a asymmetric-rtt neutral control".into();
    s
}

/// Beyond Table 2 #3 — **multi-lane shaping on two links**: topology B with
/// two-lane shapers (class 1 at `1 − fraction`, class 2 at `fraction` of
/// capacity) on both the backbone `l5` and the ingress `l14`. Multi-link,
/// multi-lane differentiation in one declarative scenario.
pub fn dual_link_shaping(p: TopologyBParams) -> Scenario {
    let paper = topology_b();
    let g = &paper.topology;
    let l5 = paper.link_named("l5");
    let l14 = paper.link_named("l14");
    let (a, da) = shaper_at_fraction(g, l5, p.policing_fraction);
    let (c, dc) = shaper_at_fraction(g, l14, p.policing_fraction);
    topology_b_base("topology-b dual-link shaping", p, &paper)
        .differentiate(a, da)
        .differentiate(c, dc)
        .expect(Expectation::nonneutral(vec![l5, l14]))
        .build()
        .expect("library scenario is valid")
}

/// Beyond Table 2 #4 — **mixed-CC policer contention**: topology A with the
/// 20%-of-capacity policer on `l5`, but every path runs a heterogeneous
/// 3:1 CUBIC/NewReno fleet instead of a single algorithm. The policed class
/// must still stand out even though the *fleet mix* skews per-flow
/// aggressiveness within each class.
pub fn mixed_cc_policer_contention(duration_s: f64, seed: u64) -> Scenario {
    let fleet = CcFleet::fleet(&[(CcKind::Cubic, 3), (CcKind::NewReno, 1)]);
    let mut s = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        flows_per_path: 20,
        duration_s,
        seed,
        ..ExperimentParams::default()
    });
    for (_, profile) in &mut s.path_traffic {
        profile.cc = fleet.clone();
    }
    s.name = "topology-a mixed-cc policer contention".into();
    s
}

/// Beyond Table 2 #5 — **mixed-CC neutral control**: topology A with no
/// mechanism, every path running a 1:1 CUBIC/NewReno fleet under heavy
/// aggregation. NewReno's slower window regrowth loses to CUBIC within
/// every class; a sound detector must still answer "neutral" because the
/// skew is CC-induced, not class-induced.
pub fn mixed_cc_neutral_control(duration_s: f64, seed: u64) -> Scenario {
    let fleet = CcFleet::fleet(&[(CcKind::Cubic, 1), (CcKind::NewReno, 1)]);
    let mut s = topology_a_scenario(ExperimentParams {
        flows_per_path: 70,
        duration_s,
        seed,
        ..ExperimentParams::default()
    });
    for (_, profile) in &mut s.path_traffic {
        profile.cc = fleet.clone();
    }
    s.name = "topology-a mixed-cc neutral control".into();
    s
}

/// Beyond Table 2 #6 — **shallow-buffer neutral control**: topology A with
/// no mechanism but the shared link's queue cut from one BDP (2.5 MB) to 30
/// full-MSS packets. The shallow buffer congests both classes much earlier;
/// the detector must read that as congestion, not differentiation.
pub fn shallow_buffer_neutral_control(duration_s: f64, seed: u64) -> Scenario {
    let mut s = topology_a_scenario(ExperimentParams {
        flows_per_path: 40,
        duration_s,
        seed,
        ..ExperimentParams::default()
    });
    let l5 = s.topology.link_by_name("l5").expect("topology A has l5");
    s.queue_overrides.push((l5, QueueOverride::Packets(30)));
    s.name = "topology-a shallow-buffer neutral control".into();
    s
}

/// Beyond Table 2 #7 — **deep-buffer policing**: the Table 2 policing setup
/// with the shared link's queue quadrupled to 10 MB. The deep FIFO absorbs
/// congestion losses, so nearly every remaining loss signal comes from the
/// policer itself — the cleanest version of the policing signature.
pub fn deep_buffer_policing(duration_s: f64, seed: u64) -> Scenario {
    let mut s = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        flows_per_path: 20,
        duration_s,
        seed,
        ..ExperimentParams::default()
    });
    let l5 = s.topology.link_by_name("l5").expect("topology A has l5");
    s.queue_overrides
        .push((l5, QueueOverride::Bytes(10_000_000)));
    s.name = "topology-a deep-buffer policing".into();
    s
}

/// The delay feature the delay-vs-loss headline runs with. Tighter than
/// [`nni_core::DelayFeature::default`] (which tolerates a full BDP-sized
/// standing queue): the headline's shaper lane is *rate*-visible long before
/// its deep buffer drops anything, so a 4x-over-baseline p90 with a 50 ms
/// absolute floor is the calibrated operating point. Neutral populations
/// stay unflagged under this feature because neutral queueing inflates
/// every class alike — see `tests/topogen_population.rs`.
pub const HEADLINE_DELAY_FEATURE: nni_core::DelayFeature = nni_core::DelayFeature {
    rel_factor: 4.0,
    abs_floor_s: 0.05,
};

/// Beyond Table 2 #9 — the **delay-visible shaper**, the delay-based
/// differentiation headline: class 2 is shaped to 30% of `l5` through a
/// single token-bucket lane whose buffer (16 MB) sits far above the class's
/// in-flight ceiling, so the lane *never drops a packet*. Class 2's flows
/// are fixed-size (1.875 MB each, 2 slots per path), which caps the bytes
/// TCP can have in flight at ~7.5 MB across the class — the lane queue
/// grows, oscillates, and drains, but cannot overflow. Class 1 is kept
/// light, and the shared FIFO never saturates.
///
/// The result is a network whose only differentiation signature is
/// *queueing delay*: loss-only inference sees a loss-free network and
/// answers "neutral" (a miss — the expectation says non-neutral), while the
/// joint loss+delay feature sees class 2's p90 one-way delay inflate far
/// past its slow-start baseline and flags `l5`. The discrimination gate
/// lives in `tests/delay_headline.rs`.
pub fn delay_visible_shaper(duration_s: f64, seed: u64) -> Scenario {
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let l5 = paper.link_named("l5");
    let lane = ShapeLaneConfig {
        class: 1,
        rate_bps: 0.3 * BOTTLENECK_BPS,
        burst_bytes: 3_000.0,
        buffer_bytes: 16_000_000,
    };
    let mut b = Scenario::builder("topology-a delay-visible shaper", g.clone())
        .classes(paper.classes.clone())
        .differentiate(l5, Differentiation::Shaping { lanes: vec![lane] })
        .measurement(MeasurementConfig {
            duration_s,
            // A tiny warm-up keeps the slow-start intervals in the log:
            // they are the low-delay baseline the inflation test needs.
            warmup_s: Some(0.2),
            seed,
            ..MeasurementConfig::default()
        })
        .delay_feature(HEADLINE_DELAY_FEATURE);
    for path in g.path_ids() {
        let is_c2 = paper.classes[1].contains(&path);
        let profile = if is_c2 {
            // Fixed-size transfers bound the in-flight bytes per slot, so
            // the lane queue has a hard ceiling below its buffer.
            TrafficProfile {
                class: 1,
                cc: CcKind::Cubic.into(),
                size: SizeDist::Fixed { bytes: 1_875_000 },
                mean_gap_s: 0.5,
                parallel: 2,
            }
        } else {
            TrafficProfile::pareto_bits(0, CcKind::Cubic, 5e6, 1.0, 2)
        };
        b = b.path_traffic(path, profile);
    }
    b.expect(Expectation::nonneutral(vec![l5]))
        .build()
        .expect("library scenario is valid")
}

/// Beyond Table 2 #8 — **policer-rate sweep on topology B**: the §6.4
/// network with a single policer on the tier-2 ingress `l14`, swept over
/// three token rates (15%, 25%, 35% of capacity) as one [`SweepSet`]. The
/// Table 3 traffic and white-host background are identical across members,
/// so the sweep isolates the rate axis.
pub fn policer_rate_sweep_topology_b(p: TopologyBParams) -> SweepSet {
    let paper = topology_b();
    let l14 = paper.link_named("l14");
    let base = topology_b_base("topology-b policer-rate sweep", p, &paper)
        .expect(Expectation::neutral())
        .build()
        .expect("library scenario is valid");
    SweepSet::over_policer_rates(
        "topology-b policer-rate sweep (l14)",
        &base,
        l14,
        1,
        0.03,
        &[0.15, 0.25, 0.35],
    )
}

/// The **identity suite**: every scenario family of this library at
/// identity-test durations (short windows, 1 s warm-up so several measured
/// intervals survive), in a pinned order. This is the population behind two
/// cross-implementation gates:
///
/// * `tests/report_identity.rs` pins full-`SimReport` fingerprints of all
///   14 members × 3 seeds against the pre-rewrite emulator;
/// * `tests/corpus_roundtrip.rs` asserts that `infer` over a binary
///   encode→decode round trip of each member's
///   [`MeasurementSet`](nni_measure::MeasurementSet) is bit-identical to
///   the fused `Experiment::run` result.
///
/// Appending new families is fine (new golden rows get captured); never
/// reorder or edit existing members — the fingerprints are order-keyed.
pub fn identity_suite() -> Vec<Scenario> {
    let short_b = || TopologyBParams {
        duration_s: 5.0,
        ..TopologyBParams::default()
    };
    let sweep = policer_rate_sweep_topology_b(TopologyBParams {
        duration_s: 4.0,
        ..TopologyBParams::default()
    });
    let mut scenarios = vec![
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Neutral,
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Shaping(0.3),
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_b_scenario(short_b()),
        dual_policer_topology_b(short_b()),
        asymmetric_rtt_neutral(6.0, 42),
        dual_link_shaping(short_b()),
        mixed_cc_policer_contention(6.0, 42),
        mixed_cc_neutral_control(6.0, 42),
        shallow_buffer_neutral_control(6.0, 42),
        deep_buffer_policing(6.0, 42),
    ];
    scenarios.extend(sweep.scenarios().cloned());
    // A short warm-up keeps several post-warmup intervals in the log (the
    // default 5 s would drop nearly everything at these durations).
    for s in &mut scenarios {
        s.measurement.warmup_s = Some(1.0);
    }
    scenarios
}

/// Ground-truth class partition of topology A as a [`nni_core::Classes`]
/// value (for reporting).
pub fn topology_a_classes(paper: &PaperTopology) -> nni_core::Classes {
    nni_core::Classes::new(&paper.topology, paper.classes.clone()).expect("valid partition")
}

/// The PathIds of topology A in class order (p1, p2 | p3, p4).
pub fn topology_a_paths() -> [PathId; 4] {
    [PathId(0), PathId(1), PathId(2), PathId(3)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_a_scenarios_carry_the_table2_structure() {
        let s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            ..ExperimentParams::default()
        });
        assert_eq!(s.path_traffic.len(), 4);
        assert_eq!(s.differentiation.len(), 1);
        assert!(s.expectation.expect_flagged);

        let neutral = topology_a_scenario(ExperimentParams::default());
        assert!(neutral.differentiation.is_empty());
        assert!(!neutral.expectation.expect_flagged);

        // The §6.3 exception: a 50/50 shaper is behaviourally neutral.
        let half = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Shaping(0.5),
            ..ExperimentParams::default()
        });
        assert_eq!(half.differentiation.len(), 1);
        assert!(!half.expectation.expect_flagged);
    }

    #[test]
    fn topology_b_scenario_places_three_policers_and_background() {
        let s = topology_b_scenario(TopologyBParams::default());
        assert_eq!(s.differentiation.len(), 3);
        assert_eq!(s.background.len(), 3);
        assert_eq!(s.expectation.nonneutral_links.len(), 3);
        assert_eq!(s.measurement.normalize_salt, 0xBEEF);
        // 7 short-flow paths x 3 profiles + 8 long-flow paths x 2 profiles.
        assert_eq!(s.path_traffic.len(), 7 * 3 + 8 * 2);
    }

    #[test]
    fn variant_scenarios_build() {
        let p = TopologyBParams::default();
        let dual = dual_policer_topology_b(p);
        assert_eq!(dual.differentiation.len(), 2);
        assert_eq!(dual.expectation.nonneutral_links.len(), 2);
        crate::audit::assert_demand_exceeds_policed_rate(&dual);

        let shaped = dual_link_shaping(p);
        assert_eq!(shaped.differentiation.len(), 2);

        let asym = asymmetric_rtt_neutral(30.0, 1);
        assert!(asym.differentiation.is_empty());
        assert!(!asym.expectation.expect_flagged);
    }

    #[test]
    fn topology_b_policers_are_not_starved() {
        crate::audit::assert_demand_exceeds_policed_rate(&topology_b_scenario(
            TopologyBParams::default(),
        ));
    }

    #[test]
    fn mixed_cc_scenarios_carry_heterogeneous_fleets() {
        let contention = mixed_cc_policer_contention(10.0, 1);
        assert_eq!(contention.differentiation.len(), 1);
        assert!(contention.expectation.expect_flagged);
        assert!(contention.path_traffic.iter().all(|(_, p)| p.cc.is_mixed()));
        // The PR 1 lesson applies to every new policer scenario.
        crate::audit::assert_demand_exceeds_policed_rate(&contention);

        let control = mixed_cc_neutral_control(10.0, 1);
        assert!(control.differentiation.is_empty());
        assert!(!control.expectation.expect_flagged);
        assert!(control.path_traffic.iter().all(|(_, p)| p.cc.is_mixed()));
    }

    #[test]
    fn buffer_variant_scenarios_override_the_shared_queue() {
        let shallow = shallow_buffer_neutral_control(10.0, 1);
        let l5 = shallow.topology.link_by_name("l5").unwrap();
        assert_eq!(
            shallow.queue_overrides,
            vec![(l5, QueueOverride::Packets(30))]
        );
        assert!(!shallow.expectation.expect_flagged);
        // The override reaches the compiled link table.
        let exp = shallow.compile();
        assert_eq!(exp.links()[l5.index()].queue_bytes, Some(30 * 1500));

        let deep = deep_buffer_policing(10.0, 1);
        assert_eq!(
            deep.queue_overrides,
            vec![(l5, QueueOverride::Bytes(10_000_000))]
        );
        assert!(deep.expectation.expect_flagged);
        crate::audit::assert_demand_exceeds_policed_rate(&deep);
    }

    #[test]
    fn delay_visible_shaper_carries_the_headline_structure() {
        let s = delay_visible_shaper(6.0, 42);
        // Joint inference is configured in: recording plus the calibrated
        // feature.
        assert!(s.measurement.record_delay);
        assert_eq!(s.measurement.delay_feature, Some(HEADLINE_DELAY_FEATURE));
        assert!(s.expectation.expect_flagged);
        // One deep-buffered lane, shaping class 2 only.
        let lanes = match &s.differentiation[0].1 {
            Differentiation::Shaping { lanes } => lanes,
            _ => panic!("expected a shaper"),
        };
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].class, 1);
        // The lane buffer exceeds the class's in-flight ceiling (4 slots x
        // 1.875 MB fixed flows), so it can never drop.
        assert!(lanes[0].buffer_bytes > 4 * 1_875_000);
        // The PR 1 lesson applies to shaper lanes too: the audit now covers
        // them, and the lane is well fed.
        crate::audit::assert_demand_exceeds_policed_rate(&s);
    }

    #[test]
    fn policer_rate_sweep_isolates_the_rate_axis() {
        let sweep = policer_rate_sweep_topology_b(TopologyBParams::default());
        assert_eq!(sweep.len(), 3);
        let mut last_rate = 0.0;
        for member in sweep.members() {
            let s = &member.scenario;
            assert_eq!(s.differentiation.len(), 1, "single policer per member");
            let l14 = s.topology.link_by_name("l14").unwrap();
            assert_eq!(s.differentiation[0].0, l14);
            assert_eq!(s.expectation.nonneutral_links, vec![l14]);
            let rate = match s.differentiation[0].1 {
                nni_emu::Differentiation::Policing { rate_bps, .. } => rate_bps,
                _ => panic!("expected a policer"),
            };
            assert!(rate > last_rate, "rates must ascend");
            last_rate = rate;
            crate::audit::assert_demand_exceeds_policed_rate(s);
        }
    }
}
