//! Ready-made scenarios: the paper's evaluation setups (topologies A and B)
//! and variants beyond Table 2 that the scenario API makes one-liners —
//! multi-link differentiation, dual policers, asymmetric-RTT controls.
//!
//! Everything here compiles down to the same [`Scenario`] type, so every
//! inference method (Algorithm 1 and the tomography baselines of
//! [`crate::baselines`]) consumes identical inputs.

use nni_emu::{policer_at_fraction, shaper_at_fraction, CcKind};
use nni_topology::library::{topology_a, topology_b, PaperTopology};
use nni_topology::PathId;

use crate::spec::{Expectation, Scenario, ScenarioBuilder, TrafficProfile};

/// What the shared link of topology A does (Table 2's "Link l5 behavior").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// Plain FIFO.
    Neutral,
    /// Policing class 2 at the given fraction of capacity.
    Policing(f64),
    /// Shaping class 2 at the fraction, class 1 at one minus it.
    Shaping(f64),
}

impl Mechanism {
    fn label(&self) -> String {
        match self {
            Mechanism::Neutral => "neutral".into(),
            Mechanism::Policing(f) => format!("policing {:.0}%", f * 100.0),
            Mechanism::Shaping(f) => format!("shaping {:.0}%", f * 100.0),
        }
    }
}

/// Parameters of one topology-A experiment (Table 1 defaults; durations
/// shortened per DESIGN.md, `--duration` restores the paper's 600 s).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Shared-link behaviour.
    pub mechanism: Mechanism,
    /// Mean flow size of class-1 paths (bits).
    pub flow_size_c1_bits: f64,
    /// Mean flow size of class-2 paths (bits).
    pub flow_size_c2_bits: f64,
    /// Propagation RTT of class-1 paths (seconds).
    pub rtt_c1_s: f64,
    /// Propagation RTT of class-2 paths (seconds).
    pub rtt_c2_s: f64,
    /// Congestion control of class-1 paths.
    pub cc_c1: CcKind,
    /// Congestion control of class-2 paths.
    pub cc_c2: CcKind,
    /// Parallel flows per path.
    pub flows_per_path: usize,
    /// Mean inter-flow gap (seconds).
    pub mean_gap_s: f64,
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Measurement interval (seconds).
    pub interval_s: f64,
    /// Loss threshold.
    pub loss_threshold: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            mechanism: Mechanism::Neutral,
            flow_size_c1_bits: 10e6,
            flow_size_c2_bits: 10e6,
            rtt_c1_s: 0.05,
            rtt_c2_s: 0.05,
            cc_c1: CcKind::Cubic,
            cc_c2: CcKind::Cubic,
            flows_per_path: 20,
            mean_gap_s: 10.0,
            duration_s: 120.0,
            interval_s: 0.1,
            loss_threshold: 0.01,
            seed: 42,
        }
    }
}

/// The paper's Figure 7 dumbbell with the given parameters, as a scenario.
pub fn topology_a_scenario(p: ExperimentParams) -> Scenario {
    let paper: PaperTopology = topology_a(p.rtt_c1_s, p.rtt_c2_s);
    let g = &paper.topology;
    let l5 = paper.link_named("l5");

    let mut b = Scenario::builder(
        format!("topology-a {}", p.mechanism.label()),
        paper.topology.clone(),
    )
    .classes(paper.classes.clone())
    .duration_s(p.duration_s)
    .interval_s(p.interval_s)
    .loss_threshold(p.loss_threshold)
    .seed(p.seed);

    b = match p.mechanism {
        Mechanism::Neutral => b,
        Mechanism::Policing(frac) => {
            let (l, d) = policer_at_fraction(g, l5, 1, frac, 0.01);
            b.differentiate(l, d)
        }
        Mechanism::Shaping(frac) => {
            let (l, d) = shaper_at_fraction(g, l5, frac);
            b.differentiate(l, d)
        }
    };

    for path in g.path_ids() {
        let is_c2 = paper.classes[1].contains(&path);
        let (bits, cc) = if is_c2 {
            (p.flow_size_c2_bits, p.cc_c2)
        } else {
            (p.flow_size_c1_bits, p.cc_c1)
        };
        b = b.path_traffic(
            path,
            TrafficProfile::pareto_bits(u8::from(is_c2), cc, bits, p.mean_gap_s, p.flows_per_path),
        );
    }

    // Ground truth: the network differentiates unless neutral — with the one
    // §6.3 exception: a 50/50 shaper throttles both classes identically and
    // is behaviourally neutral.
    let expectation = match p.mechanism {
        Mechanism::Neutral => Expectation::neutral(),
        Mechanism::Shaping(frac) if (frac - 0.5).abs() < 1e-9 => Expectation::neutral(),
        _ => Expectation::nonneutral(vec![l5]),
    };

    b.expect(expectation)
        .build()
        .expect("library scenario is valid")
}

/// Parameters of the topology B experiment (§6.4).
#[derive(Debug, Clone, Copy)]
pub struct TopologyBParams {
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Policing rate as a fraction of link capacity.
    pub policing_fraction: f64,
    /// Loss threshold.
    pub loss_threshold: f64,
    /// Measurement interval (seconds).
    pub interval_s: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TopologyBParams {
    fn default() -> Self {
        TopologyBParams {
            duration_s: 300.0,
            policing_fraction: 0.2,
            loss_threshold: 0.01,
            interval_s: 0.1,
            seed: 7,
        }
    }
}

/// Shared glue of every topology-B variant: Table 3 traffic on the measured
/// paths plus the three white-host background routes. The caller adds
/// differentiation and the expectation.
fn topology_b_base(name: &str, p: TopologyBParams, paper: &PaperTopology) -> ScenarioBuilder {
    let mut b = Scenario::builder(name, paper.topology.clone())
        .classes(paper.classes.clone())
        .duration_s(p.duration_s)
        .interval_s(p.interval_s)
        .loss_threshold(p.loss_threshold)
        .seed(p.seed)
        .measurement_salt(0xBEEF);

    // Table 3 traffic. Dark gray (class c1): 1 Mb + 10 Mb + 40 Mb parallel
    // flows; light gray (class c2): one 10 Gb flow plus medium churn (the
    // BitTorrent-like restarts of §1's motivation, whose slow-starts into
    // the policers make same-class loss co-occurrence observable).
    for &path in &paper.classes[0] {
        for profile in short_flow_mix_profiles(0) {
            b = b.path_traffic(path, profile);
        }
    }
    for &path in &paper.classes[1] {
        b = b.path_traffic(path, long_flow_profile(1)).path_traffic(
            path,
            TrafficProfile::pareto_bits(1, CcKind::Cubic, 40e6, 2.0, 3),
        );
    }

    // White hosts: unmeasured background routes carrying both mixes; the
    // first drives the neutral l13 near capacity (Figure 11's pair).
    let bg_routes = [
        paper.links_named(&["l21", "l13", "l17"]),
        paper.links_named(&["l21", "l6", "l15", "l16"]),
        paper.links_named(&["l23", "l8", "l11", "l19"]),
    ];
    for links in bg_routes {
        let mut profiles = short_flow_mix_profiles(0);
        profiles.push(long_flow_profile(1));
        b = b.background_traffic(links, profiles);
    }
    b
}

/// Strips the route from an emu-level [`TrafficSpec`], leaving the
/// route-agnostic profile — so the Table 3 traffic constants live only in
/// `nni_emu::traffic`.
fn profile_of(spec: &nni_emu::TrafficSpec) -> TrafficProfile {
    TrafficProfile {
        class: spec.class,
        cc: spec.cc,
        size: spec.size,
        mean_gap_s: spec.mean_gap_s,
        parallel: spec.parallel,
    }
}

fn short_flow_mix_profiles(class: u8) -> Vec<TrafficProfile> {
    nni_emu::short_flow_mix(nni_emu::RouteId(0), class, CcKind::Cubic)
        .iter()
        .map(profile_of)
        .collect()
}

fn long_flow_profile(class: u8) -> TrafficProfile {
    profile_of(&nni_emu::long_flow(
        nni_emu::RouteId(0),
        class,
        CcKind::Cubic,
    ))
}

/// The paper's §6.4 experiment: topology B with policers on `l5`, `l14`, and
/// `l20` targeting the long-flow class.
///
/// Bursts differ per device (as they would across real vendors), which also
/// desynchronises the policers' token cycles — identically configured
/// policers otherwise lock their loss episodes together and violate the
/// link-independence assumption (§2.2, assumption #2).
pub fn topology_b_scenario(p: TopologyBParams) -> Scenario {
    let paper = topology_b();
    let bursts = [0.025, 0.03, 0.035];
    let mut b = topology_b_base("topology-b 3-policer", p, &paper);
    for (&l, burst) in paper.nonneutral_links.iter().zip(bursts) {
        let (link, diff) = policer_at_fraction(&paper.topology, l, 1, p.policing_fraction, burst);
        b = b.differentiate(link, diff);
    }
    b.expect(Expectation::nonneutral(paper.nonneutral_links.clone()))
        .build()
        .expect("library scenario is valid")
}

/// Beyond Table 2 #1 — **dual-policer topology B**: only the two tier-2
/// ingress policers (`l14`, `l20`) are active, at different rates, while the
/// backbone `l5` stays neutral. Exercises multi-violation localization
/// without the widely shared backbone sequence.
pub fn dual_policer_topology_b(p: TopologyBParams) -> Scenario {
    let paper = topology_b();
    let g = &paper.topology;
    let l14 = paper.link_named("l14");
    let l20 = paper.link_named("l20");
    let (a, da) = policer_at_fraction(g, l14, 1, p.policing_fraction, 0.03);
    let (c, dc) = policer_at_fraction(g, l20, 1, 1.5 * p.policing_fraction, 0.035);
    topology_b_base("topology-b dual-policer", p, &paper)
        .differentiate(a, da)
        .differentiate(c, dc)
        .expect(Expectation::nonneutral(vec![l14, l20]))
        .build()
        .expect("library scenario is valid")
}

/// Beyond Table 2 #2 — **asymmetric-RTT neutral control**: topology A with
/// no mechanism but very different class RTTs (50 ms vs 200 ms) under heavy
/// aggregation. TCP's RTT unfairness skews throughput between the classes;
/// a sound detector must still answer "neutral".
pub fn asymmetric_rtt_neutral(duration_s: f64, seed: u64) -> Scenario {
    let mut s = topology_a_scenario(ExperimentParams {
        rtt_c1_s: 0.05,
        rtt_c2_s: 0.2,
        flows_per_path: 70,
        duration_s,
        seed,
        ..ExperimentParams::default()
    });
    s.name = "topology-a asymmetric-rtt neutral control".into();
    s
}

/// Beyond Table 2 #3 — **multi-lane shaping on two links**: topology B with
/// two-lane shapers (class 1 at `1 − fraction`, class 2 at `fraction` of
/// capacity) on both the backbone `l5` and the ingress `l14`. Multi-link,
/// multi-lane differentiation in one declarative scenario.
pub fn dual_link_shaping(p: TopologyBParams) -> Scenario {
    let paper = topology_b();
    let g = &paper.topology;
    let l5 = paper.link_named("l5");
    let l14 = paper.link_named("l14");
    let (a, da) = shaper_at_fraction(g, l5, p.policing_fraction);
    let (c, dc) = shaper_at_fraction(g, l14, p.policing_fraction);
    topology_b_base("topology-b dual-link shaping", p, &paper)
        .differentiate(a, da)
        .differentiate(c, dc)
        .expect(Expectation::nonneutral(vec![l5, l14]))
        .build()
        .expect("library scenario is valid")
}

/// Ground-truth class partition of topology A as a [`nni_core::Classes`]
/// value (for reporting).
pub fn topology_a_classes(paper: &PaperTopology) -> nni_core::Classes {
    nni_core::Classes::new(&paper.topology, paper.classes.clone()).expect("valid partition")
}

/// The PathIds of topology A in class order (p1, p2 | p3, p4).
pub fn topology_a_paths() -> [PathId; 4] {
    [PathId(0), PathId(1), PathId(2), PathId(3)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_a_scenarios_carry_the_table2_structure() {
        let s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            ..ExperimentParams::default()
        });
        assert_eq!(s.path_traffic.len(), 4);
        assert_eq!(s.differentiation.len(), 1);
        assert!(s.expectation.expect_flagged);

        let neutral = topology_a_scenario(ExperimentParams::default());
        assert!(neutral.differentiation.is_empty());
        assert!(!neutral.expectation.expect_flagged);

        // The §6.3 exception: a 50/50 shaper is behaviourally neutral.
        let half = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Shaping(0.5),
            ..ExperimentParams::default()
        });
        assert_eq!(half.differentiation.len(), 1);
        assert!(!half.expectation.expect_flagged);
    }

    #[test]
    fn topology_b_scenario_places_three_policers_and_background() {
        let s = topology_b_scenario(TopologyBParams::default());
        assert_eq!(s.differentiation.len(), 3);
        assert_eq!(s.background.len(), 3);
        assert_eq!(s.expectation.nonneutral_links.len(), 3);
        assert_eq!(s.measurement.normalize_salt, 0xBEEF);
        // 7 short-flow paths x 3 profiles + 8 long-flow paths x 2 profiles.
        assert_eq!(s.path_traffic.len(), 7 * 3 + 8 * 2);
    }

    #[test]
    fn variant_scenarios_build() {
        let p = TopologyBParams::default();
        let dual = dual_policer_topology_b(p);
        assert_eq!(dual.differentiation.len(), 2);
        assert_eq!(dual.expectation.nonneutral_links.len(), 2);

        let shaped = dual_link_shaping(p);
        assert_eq!(shaped.differentiation.len(), 2);

        let asym = asymmetric_rtt_neutral(30.0, 1);
        assert!(asym.differentiation.is_empty());
        assert!(!asym.expectation.expect_flagged);
    }
}
