//! # nni-scenario
//!
//! The topology-agnostic experiment layer: declare *what* to run —
//! any topology, any class partition, differentiation on any set of links,
//! per-path and background traffic, the measurement window — as a
//! [`Scenario`], compile it into a runnable [`Experiment`], and execute
//! batches through an [`Executor`].
//!
//! * [`spec`] — [`Scenario`], [`ScenarioBuilder`], validation (including
//!   mixed congestion-control fleets and per-link [`QueueOverride`]s).
//! * [`experiment`] — the compiled [`Experiment`] and its
//!   [`ExperimentOutcome`]. Acquisition and inference are decoupled:
//!   [`Experiment::simulate`] yields a serializable
//!   [`MeasurementSet`] (experiments are [`MeasurementSource`]s), and
//!   [`Experiment::run`] is the thin fused composition.
//! * [`infer`](mod@infer) — the inference half: [`infer()`]/[`infer_scored`]
//!   run Algorithm 1/2 over *any* measurement set (live, decoded from an
//!   on-disk [`Corpus`], or cached in a [`MeasurementCache`]) under an
//!   [`InferenceConfig`].
//! * [`stream`](mod@stream) — online inference: [`StreamingInference`]
//!   re-clusters on every closed interval from incremental Algorithm 2
//!   counters, and [`infer_incremental`] converges bit-identically to
//!   [`infer()`] (the streaming guarantee, gated by
//!   `tests/streaming_convergence.rs` in `nni-live`).
//! * [`executor`] — [`SerialExecutor`] and [`ShardedExecutor`]: independent
//!   runs fan out across scoped threads with deterministic, input-order
//!   results. Identical scenarios produce bit-identical outcomes on either
//!   executor.
//! * [`proto`] — the worker wire protocol: a complete [`Scenario`] codec
//!   plus the checksummed job/result frames exchanged with `nni-worker`
//!   subprocesses.
//! * [`process`] — [`ProcessExecutor`]: the same batch contract fanned
//!   across worker *subprocesses*, with job timeouts, crash-respawn under
//!   exponential backoff, bounded retries, and quarantine of jobs that
//!   exhaust their budget ([`BatchOutcome`]) — the third leg of the
//!   serial/sharded/process identity gate.
//! * [`fault`] — [`FaultPlan`]: deterministic, seeded fault injection
//!   (hangs, crashes, torn frames, bit flips, poison jobs) shipped to
//!   workers through [`FAULT_PLAN_ENV`]; the chaos harness behind
//!   `tests/chaos.rs`.
//! * [`sweep`] — [`SweepSet`]: a named experiment family over one axis
//!   (seeds, policer rates, differentiation placements, CC fleets — and the
//!   inference-side axes [`SweepSet::decision_thresholds`] /
//!   [`SweepSet::cluster_configs`], which [`SweepSet::run_reinfer`] serves
//!   from one simulation per distinct measurement) that compiles into a
//!   batch and runs through any executor with one call.
//! * [`library`] — ready-made scenarios: the paper's topology A (Table 2)
//!   and topology B (§6.4) setups plus variants beyond Table 2
//!   (dual policers, asymmetric-RTT and mixed-CC neutral controls,
//!   buffer-depth variants, a policer-rate sweep).
//! * [`generate`] — [`ScenarioGen`]: seeded random-but-valid scenarios
//!   across every axis, powering the randomized invariant suite.
//! * [`audit`] — structural traffic-model audits
//!   ([`assert_demand_exceeds_policed_rate`]).
//! * [`baselines`] — adapters that feed the *same* scenario and run to the
//!   related-work baselines (boolean/loss tomography, Glasnost, NetPolice).
//!
//! ## Quick start
//!
//! ```
//! use nni_scenario::{library, Executor, ShardedExecutor, seed_sweep};
//!
//! // A Table 2 policing experiment on topology A …
//! let scenario = library::topology_a_scenario(library::ExperimentParams {
//!     mechanism: library::Mechanism::Policing(0.2),
//!     duration_s: 15.0,
//!     ..library::ExperimentParams::default()
//! });
//! // … fanned over seeds across worker threads, results in seed order.
//! let outcomes = ShardedExecutor::new(2).execute(&seed_sweep(&scenario, &[1, 2]));
//! assert_eq!(outcomes.len(), 2);
//! ```
//!
//! Sweeps are first-class: the same fan-out as a [`SweepSet`] keeps the
//! tick labels attached to the outcomes.
//!
//! ```
//! use nni_scenario::{library, SweepSet, SerialExecutor};
//!
//! let scenario = library::topology_a_scenario(library::ExperimentParams {
//!     duration_s: 4.0,
//!     ..library::ExperimentParams::default()
//! });
//! let set = SweepSet::over_seeds("seed sweep", &scenario, &[1, 2]);
//! let outcomes = set.run(&SerialExecutor);
//! assert_eq!(outcomes[1].tick, "seed 2");
//! ```

pub mod audit;
pub mod baselines;
pub mod executor;
pub mod experiment;
pub mod fault;
pub mod generate;
pub mod infer;
pub mod library;
pub mod process;
pub mod proto;
pub mod spec;
pub mod stream;
pub mod sweep;

pub use audit::{assert_demand_exceeds_policed_rate, policed_demand_report, DEMAND_MARGIN};
pub use executor::{compile_all, seed_sweep, Executor, SerialExecutor, ShardedExecutor};
pub use experiment::{simulation_count, Experiment, ExperimentOutcome};
pub use fault::{job_token, Fault, FaultPlan, FaultPlanParseError, FAULT_PLAN_ENV};
pub use generate::{GenConfig, LibraryTopologies, ScenarioGen, TopologySource};
pub use infer::{infer, infer_scored, InferenceConfig, InferenceOutcome};
pub use process::{
    default_worker_bin, BatchOutcome, ProcessError, ProcessExecutor, ProcessStats, Quarantined,
    WorkerFailure, WorkerTransport, DEFAULT_CONNECT_TIMEOUT_MS, DEFAULT_JOB_TIMEOUT_MS,
    DEFAULT_MAX_ATTEMPTS, WORKER_BIN_ENV,
};
pub use proto::{
    decode_scenario, encode_scenario, read_job, read_result, result_frame_bytes, write_job,
    write_result, JOB_MAGIC, RESULT_MAGIC,
};
pub use spec::{
    BackgroundTraffic, Expectation, MeasurementConfig, QueueOverride, Scenario, ScenarioBuilder,
    ScenarioError, TrafficProfile, DEFAULT_NORMALIZE_SALT,
};
pub use stream::{infer_incremental, StreamingInference};
pub use sweep::{reinfer_sets, run_sets, ReinferOutcome, SweepMember, SweepOutcome, SweepSet};
// The dataset seam's types, re-exported so consumers of the experiment
// surface need only this crate.
pub use nni_measure::{
    Cached, Corpus, CorpusEntry, MeasurementCache, MeasurementSet, MeasurementSource, Provenance,
    SetKey, SourceError,
};
