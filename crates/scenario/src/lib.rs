//! # nni-scenario
//!
//! The topology-agnostic experiment layer: declare *what* to run —
//! any topology, any class partition, differentiation on any set of links,
//! per-path and background traffic, the measurement window — as a
//! [`Scenario`], compile it into a runnable [`Experiment`], and execute
//! batches through an [`Executor`].
//!
//! * [`spec`] — [`Scenario`], [`ScenarioBuilder`], validation.
//! * [`experiment`] — the compiled [`Experiment`] and its
//!   [`ExperimentOutcome`] (emulate → measure → infer → score).
//! * [`executor`] — [`SerialExecutor`] and [`ShardedExecutor`]: independent
//!   runs fan out across scoped threads with deterministic, input-order
//!   results. Identical scenarios produce bit-identical outcomes on either
//!   executor.
//! * [`library`] — ready-made scenarios: the paper's topology A (Table 2)
//!   and topology B (§6.4) setups plus variants beyond Table 2
//!   (dual-policer topology B, asymmetric-RTT neutral control, multi-lane
//!   shaping on two links).
//! * [`baselines`] — adapters that feed the *same* scenario and run to the
//!   related-work baselines (boolean/loss tomography, Glasnost, NetPolice).
//!
//! ## Quick start
//!
//! ```
//! use nni_scenario::{library, Executor, ShardedExecutor, seed_sweep};
//!
//! // A Table 2 policing experiment on topology A …
//! let scenario = library::topology_a_scenario(library::ExperimentParams {
//!     mechanism: library::Mechanism::Policing(0.2),
//!     duration_s: 15.0,
//!     ..library::ExperimentParams::default()
//! });
//! // … fanned over seeds across worker threads, results in seed order.
//! let outcomes = ShardedExecutor::new(2).execute(&seed_sweep(&scenario, &[1, 2]));
//! assert_eq!(outcomes.len(), 2);
//! ```

pub mod baselines;
pub mod executor;
pub mod experiment;
pub mod library;
pub mod spec;

pub use executor::{compile_all, seed_sweep, Executor, SerialExecutor, ShardedExecutor};
pub use experiment::{Experiment, ExperimentOutcome};
pub use spec::{
    BackgroundTraffic, Expectation, MeasurementConfig, Scenario, ScenarioBuilder, ScenarioError,
    TrafficProfile, DEFAULT_NORMALIZE_SALT,
};
