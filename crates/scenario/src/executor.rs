//! Experiment executors: run a batch of independent experiments serially or
//! sharded across threads.
//!
//! Independent experiment runs are embarrassingly parallel — each one owns
//! its simulator, RNG, and logs, and [`Experiment::run`] is a pure function
//! of the scenario. The [`ShardedExecutor`] therefore guarantees the same
//! results as [`SerialExecutor`], in the same order, for any worker count:
//! outcomes are written into per-index slots, never into a shared
//! accumulator, so scheduling order cannot leak into the output.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::experiment::{Experiment, ExperimentOutcome};
use crate::spec::Scenario;

/// Runs batches of compiled experiments.
pub trait Executor {
    /// Runs every experiment and returns outcomes in input order.
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome>;

    /// Human-readable description for reports (`"serial"`, `"sharded(8)"`).
    fn describe(&self) -> String;
}

/// Runs experiments one after another on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome> {
        experiments.iter().map(Experiment::run).collect()
    }

    fn describe(&self) -> String {
        "serial".into()
    }
}

/// Fans independent experiment runs across `workers` scoped threads.
///
/// Work is claimed from an atomic counter (no pre-partitioning, so a few
/// slow experiments cannot strand an idle worker) and each outcome lands in
/// its input-index slot — result order is deterministic and identical to
/// [`SerialExecutor`]'s, seed for seed.
#[derive(Debug, Clone, Copy)]
pub struct ShardedExecutor {
    workers: usize,
}

impl ShardedExecutor {
    /// An executor with an explicit worker count (at least one).
    pub fn new(workers: usize) -> ShardedExecutor {
        ShardedExecutor {
            workers: workers.max(1),
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> ShardedExecutor {
        ShardedExecutor::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Executor for ShardedExecutor {
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome> {
        let n = experiments.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return SerialExecutor.execute(experiments);
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ExperimentOutcome>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = experiments[i].run();
                    *slots[i].lock().expect("unpoisoned slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned slot")
                    .expect("every index was claimed exactly once")
            })
            .collect()
    }

    fn describe(&self) -> String {
        format!("sharded({})", self.workers)
    }
}

/// Compiles every scenario, preserving order.
pub fn compile_all(scenarios: &[Scenario]) -> Vec<Experiment> {
    scenarios.iter().map(Scenario::compile).collect()
}

/// The (seed × scenario) fan-out: one compiled experiment per seed, in seed
/// order — feed the result to any [`Executor`].
pub fn seed_sweep(scenario: &Scenario, seeds: &[u64]) -> Vec<Experiment> {
    seeds
        .iter()
        .map(|&seed| scenario.with_seed(seed).compile())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executors_handle_empty_batches() {
        assert!(SerialExecutor.execute(&[]).is_empty());
        assert!(ShardedExecutor::new(4).execute(&[]).is_empty());
    }

    #[test]
    fn worker_count_floors_at_one() {
        assert_eq!(ShardedExecutor::new(0).workers(), 1);
        assert!(ShardedExecutor::auto().workers() >= 1);
    }

    #[test]
    fn describe_names_the_strategy() {
        assert_eq!(SerialExecutor.describe(), "serial");
        assert_eq!(ShardedExecutor::new(3).describe(), "sharded(3)");
    }
}
