//! Experiment executors: run a batch of independent experiments serially or
//! sharded across threads.
//!
//! Independent experiment runs are embarrassingly parallel — each one owns
//! its simulator, RNG, and logs, and [`Experiment::run`] is a pure function
//! of the scenario. The [`ShardedExecutor`] therefore guarantees the same
//! results as [`SerialExecutor`], in the same order, for any worker count:
//! outcomes are written into per-index slots, never into a shared
//! accumulator, so scheduling order cannot leak into the output.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use nni_measure::MeasurementSet;

use crate::experiment::{Experiment, ExperimentOutcome};
use crate::spec::Scenario;

/// Runs batches of compiled experiments.
pub trait Executor {
    /// Runs every experiment end to end (simulate + infer + score) and
    /// returns outcomes in input order.
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome>;

    /// Runs only the acquisition half of every experiment, returning the
    /// measurement sets in input order — the batch primitive re-inference
    /// sweeps build on (inference then fans out over the sets without
    /// touching the emulator again).
    fn acquire(&self, experiments: &[Experiment]) -> Vec<MeasurementSet>;

    /// Human-readable description for reports (`"serial"`, `"sharded(8)"`).
    fn describe(&self) -> String;
}

/// Runs experiments one after another on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome> {
        experiments.iter().map(Experiment::run).collect()
    }

    fn acquire(&self, experiments: &[Experiment]) -> Vec<MeasurementSet> {
        experiments.iter().map(Experiment::simulate).collect()
    }

    fn describe(&self) -> String {
        "serial".into()
    }
}

/// Fans independent experiment runs across `workers` scoped threads.
///
/// Work is claimed from an atomic counter (no pre-partitioning, so a few
/// slow experiments cannot strand an idle worker) and each outcome lands in
/// its input-index slot — result order is deterministic and identical to
/// [`SerialExecutor`]'s, seed for seed.
#[derive(Debug, Clone, Copy)]
pub struct ShardedExecutor {
    workers: usize,
}

impl ShardedExecutor {
    /// An executor with an explicit worker count (at least one).
    pub fn new(workers: usize) -> ShardedExecutor {
        ShardedExecutor {
            workers: workers.max(1),
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> ShardedExecutor {
        ShardedExecutor::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Executor for ShardedExecutor {
    fn execute(&self, experiments: &[Experiment]) -> Vec<ExperimentOutcome> {
        sharded_map(self.workers, experiments.len(), |i| experiments[i].run())
            .unwrap_or_else(|| SerialExecutor.execute(experiments))
    }

    fn acquire(&self, experiments: &[Experiment]) -> Vec<MeasurementSet> {
        sharded_map(self.workers, experiments.len(), |i| {
            experiments[i].simulate()
        })
        .unwrap_or_else(|| SerialExecutor.acquire(experiments))
    }

    fn describe(&self) -> String {
        format!("sharded({})", self.workers)
    }
}

/// The sharded fan-out shared by both executor entry points: `f(i)` for
/// every index, claimed from an atomic counter (no pre-partitioning, so a
/// few slow items cannot strand an idle worker), each result landing in its
/// input-index slot — result order is deterministic and identical to a
/// serial run. Returns `None` when the effective worker count is one (the
/// caller falls back to the serial path without spawning).
fn sharded_map<T: Send>(workers: usize, n: usize, f: impl Fn(usize) -> T + Sync) -> Option<Vec<T>> {
    let workers = workers.min(n);
    if workers <= 1 {
        return None;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("unpoisoned slot") = Some(result);
            });
        }
    });
    Some(
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned slot")
                    .expect("every index was claimed exactly once")
            })
            .collect(),
    )
}

/// Compiles every scenario, preserving order.
pub fn compile_all(scenarios: &[Scenario]) -> Vec<Experiment> {
    scenarios.iter().map(Scenario::compile).collect()
}

/// The (seed × scenario) fan-out: one compiled experiment per seed, in seed
/// order — feed the result to any [`Executor`].
pub fn seed_sweep(scenario: &Scenario, seeds: &[u64]) -> Vec<Experiment> {
    seeds
        .iter()
        .map(|&seed| scenario.with_seed(seed).compile())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executors_handle_empty_batches() {
        assert!(SerialExecutor.execute(&[]).is_empty());
        assert!(ShardedExecutor::new(4).execute(&[]).is_empty());
    }

    #[test]
    fn worker_count_floors_at_one() {
        assert_eq!(ShardedExecutor::new(0).workers(), 1);
        assert!(ShardedExecutor::auto().workers() >= 1);
    }

    #[test]
    fn describe_names_the_strategy() {
        assert_eq!(SerialExecutor.describe(), "serial");
        assert_eq!(ShardedExecutor::new(3).describe(), "sharded(3)");
    }

    #[test]
    fn acquire_is_identical_serial_and_sharded() {
        let scenario = crate::library::topology_a_scenario(crate::library::ExperimentParams {
            duration_s: 2.0,
            ..crate::library::ExperimentParams::default()
        });
        let batch = seed_sweep(&scenario, &[1, 2, 3]);
        let serial = SerialExecutor.acquire(&batch);
        let sharded = ShardedExecutor::new(2).acquire(&batch);
        assert_eq!(serial, sharded, "acquisition must be executor-invariant");
        assert_eq!(serial.len(), 3);
        assert_eq!(serial[1].provenance.seed, 2);
    }
}
