//! Sweeps as first-class sets: a [`SweepSet`] names one experiment family
//! (a Table 2 set, a policer-rate sweep, a CC-fleet comparison, a seed
//! fan-out) and compiles into a batch of [`Experiment`]s that any
//! [`Executor`] runs with one call.
//!
//! A sweep is a base scenario crossed with one *axis* — the parameter the
//! set varies. The constructors here cover the axes the evaluation sweeps:
//! differentiation placement/rate/burst ([`SweepSet::over_policer_rates`],
//! [`SweepSet::over_mechanisms`]), traffic CC fleets
//! ([`SweepSet::over_cc_fleets`]), and seeds ([`SweepSet::over_seeds`]);
//! [`SweepSet::from_points`] admits arbitrary pre-built members (how
//! `nni-bench` expresses Table 2's nine sets).
//!
//! ```
//! use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};
//! use nni_scenario::{SweepSet, SerialExecutor};
//!
//! let base = topology_a_scenario(ExperimentParams {
//!     mechanism: Mechanism::Policing(0.2),
//!     duration_s: 4.0,
//!     ..ExperimentParams::default()
//! });
//! // Three policing rates on the same link, run as one batch.
//! let link = base.differentiation[0].0;
//! let set = SweepSet::over_policer_rates("rates", &base, link, 1, 0.01, &[0.2, 0.3, 0.4]);
//! assert_eq!(set.len(), 3);
//! let outcomes = set.run(&SerialExecutor);
//! assert_eq!(outcomes.len(), 3);
//! assert_eq!(outcomes[0].tick, "20%");
//! ```

use nni_emu::{policer_at_fraction, CcFleet, ClassLabel, Differentiation};
use nni_measure::MeasurementCache;
use nni_topology::LinkId;

use crate::executor::Executor;
use crate::experiment::{Experiment, ExperimentOutcome};
use crate::infer::{infer_scored, InferenceConfig, InferenceOutcome};
use crate::spec::Scenario;

/// One member of a sweep: the x-axis tick label and its scenario.
#[derive(Debug, Clone)]
pub struct SweepMember {
    /// Tick label on the swept axis (e.g. `"20%"`, `"seed 7"`).
    pub tick: String,
    /// The member's full scenario.
    pub scenario: Scenario,
}

/// One member's result, keeping its tick label attached.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The member's tick label.
    pub tick: String,
    /// The member's experiment outcome.
    pub outcome: ExperimentOutcome,
}

/// One member's re-inference result ([`SweepSet::run_reinfer`]): the tick
/// label plus the inference half of the outcome (no raw simulation report —
/// the member may not have simulated at all).
#[derive(Debug, Clone, PartialEq)]
pub struct ReinferOutcome {
    /// The member's tick label.
    pub tick: String,
    /// The member's inference outcome over the (possibly cached) set.
    pub outcome: InferenceOutcome,
}

/// A named family of experiments varying along one axis.
#[derive(Debug, Clone)]
pub struct SweepSet {
    /// Set name (report headers).
    pub name: String,
    /// Human-readable axis label (the x-axis of the matching figure panel).
    pub axis: String,
    members: Vec<SweepMember>,
}

impl SweepSet {
    /// An empty set; add members with [`push`](SweepSet::push).
    pub fn new(name: impl Into<String>, axis: impl Into<String>) -> SweepSet {
        SweepSet {
            name: name.into(),
            axis: axis.into(),
            members: Vec::new(),
        }
    }

    /// A set from pre-built `(tick, scenario)` points.
    pub fn from_points(
        name: impl Into<String>,
        axis: impl Into<String>,
        points: impl IntoIterator<Item = (String, Scenario)>,
    ) -> SweepSet {
        let mut set = SweepSet::new(name, axis);
        for (tick, scenario) in points {
            set = set.push(tick, scenario);
        }
        set
    }

    /// Appends one member.
    pub fn push(mut self, tick: impl Into<String>, scenario: Scenario) -> SweepSet {
        self.members.push(SweepMember {
            tick: tick.into(),
            scenario,
        });
        self
    }

    /// **Seed axis**: the base scenario at each seed.
    pub fn over_seeds(name: impl Into<String>, base: &Scenario, seeds: &[u64]) -> SweepSet {
        SweepSet::from_points(
            name,
            "seed",
            seeds
                .iter()
                .map(|&seed| (format!("seed {seed}"), base.with_seed(seed))),
        )
    }

    /// **Differentiation-rate axis**: replaces whatever mechanism the base
    /// carries on `link` with a policer on `class` at each fraction of the
    /// link's capacity (burst `burst_s` seconds at the token rate). Ground
    /// truth is re-derived per member: non-neutral on the swept link *and*
    /// on every other mechanised link the base still carries.
    ///
    /// # Panics
    ///
    /// Panics when an edited member fails scenario validation (e.g. a zero
    /// fraction produces a zero-rate policer).
    pub fn over_policer_rates(
        name: impl Into<String>,
        base: &Scenario,
        link: LinkId,
        class: ClassLabel,
        burst_s: f64,
        fractions: &[f64],
    ) -> SweepSet {
        SweepSet::from_points(
            name,
            "policing rate [% of capacity]",
            fractions.iter().map(|&f| {
                let mech = policer_at_fraction(&base.topology, link, class, f, burst_s);
                let mut s = base.clone();
                s.differentiation.retain(|&(l, _)| l != link);
                s.differentiation.push(mech);
                s.expectation =
                    crate::spec::Expectation::nonneutral(mechanised_links(&s.differentiation));
                (
                    format!("{:.0}%", f * 100.0),
                    revalidated(s, "over_policer_rates"),
                )
            }),
        )
    }

    /// **Differentiation-placement axis**: the base scenario with each
    /// `(tick, placements)` alternative installed wholesale (replacing the
    /// base's differentiation). The expectation is derived from the
    /// placements: non-neutral on exactly the mechanised links.
    ///
    /// # Panics
    ///
    /// Panics when a placement alternative fails scenario validation
    /// (zero-rate policer, overlapping lanes, duplicate or unknown links).
    pub fn over_mechanisms(
        name: impl Into<String>,
        base: &Scenario,
        alternatives: impl IntoIterator<Item = (String, Vec<(LinkId, Differentiation)>)>,
    ) -> SweepSet {
        SweepSet::from_points(
            name,
            "differentiation placement",
            alternatives.into_iter().map(|(tick, placements)| {
                let mut s = base.clone();
                s.expectation = crate::spec::Expectation::nonneutral(mechanised_links(&placements));
                s.differentiation = placements;
                (tick, revalidated(s, "over_mechanisms"))
            }),
        )
    }

    /// **CC-fleet axis**: the base scenario with every measured-path
    /// profile's fleet replaced by each `(tick, fleet)` alternative —
    /// how a "CUBIC-only vs 3:1 CUBIC/NewReno" comparison is expressed.
    ///
    /// # Panics
    ///
    /// Panics when a fleet alternative fails scenario validation (an empty
    /// fleet).
    pub fn over_cc_fleets(
        name: impl Into<String>,
        base: &Scenario,
        fleets: impl IntoIterator<Item = (String, CcFleet)>,
    ) -> SweepSet {
        SweepSet::from_points(
            name,
            "congestion-control fleet",
            fleets.into_iter().map(|(tick, fleet)| {
                let mut s = base.clone();
                for (_, profile) in &mut s.path_traffic {
                    profile.cc = fleet.clone();
                }
                (tick, revalidated(s, "over_cc_fleets"))
            }),
        )
    }

    /// **Decision-threshold axis** (inference-side): the base scenario with
    /// Algorithm 1's clustered-mode `abs_threshold` set to each value. The
    /// measurement axes are untouched, so every member shares one
    /// measurement fingerprint — [`SweepSet::run_reinfer`] simulates the
    /// base exactly once and fans the thresholds out over the cached
    /// [`MeasurementSet`](nni_measure::MeasurementSet).
    ///
    /// A base in exact mode adopts the clustered defaults for the swept
    /// parameters (the threshold axis only exists in clustered mode).
    pub fn decision_thresholds(
        name: impl Into<String>,
        base: &Scenario,
        thresholds: &[f64],
    ) -> SweepSet {
        use nni_core::DecisionMode;
        let (guard, rel_margin) = match base.inference.mode {
            DecisionMode::Clustered {
                guard, rel_margin, ..
            } => (guard, rel_margin),
            DecisionMode::Exact { .. } => {
                let defaults = nni_core::Config::clustered();
                match defaults.mode {
                    DecisionMode::Clustered {
                        guard, rel_margin, ..
                    } => (guard, rel_margin),
                    DecisionMode::Exact { .. } => unreachable!("clustered() is clustered"),
                }
            }
        };
        SweepSet::from_points(
            name,
            "decision threshold",
            thresholds.iter().map(|&abs_threshold| {
                let mut s = base.clone();
                s.inference.mode = DecisionMode::Clustered {
                    guard,
                    abs_threshold,
                    rel_margin,
                };
                (format!("{abs_threshold}"), s)
            }),
        )
    }

    /// **Clustering-config axis** (inference-side): the base scenario with
    /// each complete Algorithm 1 [`Config`](nni_core::Config) installed
    /// wholesale. Like [`SweepSet::decision_thresholds`], members share the
    /// base's measurements — run through [`SweepSet::run_reinfer`], the set
    /// costs one simulation regardless of how many configs it compares.
    pub fn cluster_configs(
        name: impl Into<String>,
        base: &Scenario,
        configs: impl IntoIterator<Item = (String, nni_core::Config)>,
    ) -> SweepSet {
        SweepSet::from_points(
            name,
            "inference config",
            configs.into_iter().map(|(tick, cfg)| {
                let mut s = base.clone();
                s.inference = cfg;
                (tick, s)
            }),
        )
    }

    /// Runs the set through the measurement-set seam: simulate each
    /// *distinct* `(measurement fingerprint, seed)` exactly once — missing
    /// sets are acquired through the executor in one parallel batch, hits
    /// come from `cache` — then fan member inference configs out over the
    /// cached sets serially (inference is orders of magnitude cheaper than
    /// emulation).
    ///
    /// For an inference-axis set of N members over one base this turns
    /// O(members) simulations into O(1); for a mixed set it degenerates
    /// gracefully to one simulation per distinct member. Results are
    /// bit-identical to [`SweepSet::run`]'s inference outputs, member for
    /// member (the identity the re-inference test suite gates).
    pub fn run_reinfer(
        &self,
        executor: &dyn Executor,
        cache: &MeasurementCache,
    ) -> Vec<ReinferOutcome> {
        reinfer_sets(std::slice::from_ref(self), executor, cache)
            .pop()
            .expect("one result slice per set")
    }

    /// The members, in sweep order.
    pub fn members(&self) -> &[SweepMember] {
        &self.members
    }

    /// The member scenarios, in sweep order.
    pub fn scenarios(&self) -> impl Iterator<Item = &Scenario> {
        self.members.iter().map(|m| &m.scenario)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Compiles every member, in sweep order.
    pub fn compile(&self) -> Vec<Experiment> {
        self.members.iter().map(|m| m.scenario.compile()).collect()
    }

    /// Runs the whole set through an executor with one batched call;
    /// results keep their tick labels, in sweep order.
    pub fn run(&self, executor: &dyn Executor) -> Vec<SweepOutcome> {
        let outcomes = executor.execute(&self.compile());
        self.members
            .iter()
            .zip(outcomes)
            .map(|(m, outcome)| SweepOutcome {
                tick: m.tick.clone(),
                outcome,
            })
            .collect()
    }
}

/// The links carrying an actual mechanism (`Differentiation::None` entries
/// excluded) — the ground truth an axis constructor derives per member.
fn mechanised_links(placements: &[(LinkId, Differentiation)]) -> Vec<LinkId> {
    placements
        .iter()
        .filter(|(_, d)| !matches!(d, Differentiation::None))
        .map(|&(l, _)| l)
        .collect()
}

/// Re-validates a member an axis constructor edited: the typed checks of
/// [`ScenarioBuilder::build`](crate::ScenarioBuilder::build) also guard
/// sweep-generated scenarios, so invalid caller input panics here with the
/// precise [`ScenarioError`](crate::ScenarioError) instead of reaching the
/// simulator.
fn revalidated(s: Scenario, axis: &str) -> Scenario {
    let name = s.name.clone();
    crate::spec::ScenarioBuilder::of(s)
        .build()
        .unwrap_or_else(|e| panic!("SweepSet::{axis}: member `{name}` is invalid: {e}"))
}

/// Runs several sets through the measurement-set seam as **one** batch:
/// every distinct `(measurement fingerprint, seed)` across *all* sets is
/// simulated at most once — cache misses are acquired in a single
/// [`Executor::acquire`] call, so workers drain the whole flattened
/// distinct-measurement list — then member inference configs fan out over
/// the cached sets, re-sliced per set in input order.
///
/// The batched twin of [`SweepSet::run_reinfer`], exactly as [`run_sets`]
/// is the batched twin of [`SweepSet::run`].
pub fn reinfer_sets(
    sets: &[SweepSet],
    executor: &dyn Executor,
    cache: &MeasurementCache,
) -> Vec<Vec<ReinferOutcome>> {
    use nni_measure::MeasurementSource;
    let experiments: Vec<Vec<Experiment>> = sets.iter().map(SweepSet::compile).collect();
    // The experiments whose keys the cache lacks, one per distinct key, in
    // first-occurrence order across the whole batch.
    let mut missing: Vec<Experiment> = Vec::new();
    for e in experiments.iter().flatten() {
        if cache.get(e.key()).is_none() && missing.iter().all(|m| m.key() != e.key()) {
            missing.push(e.clone());
        }
    }
    for set in executor.acquire(&missing) {
        cache.insert(set.key(), std::sync::Arc::new(set));
    }
    sets.iter()
        .zip(&experiments)
        .map(|(set, exps)| {
            set.members
                .iter()
                .zip(exps)
                .map(|(m, e)| {
                    let data = cache.get(e.key()).expect("acquired above");
                    ReinferOutcome {
                        tick: m.tick.clone(),
                        outcome: infer_scored(
                            &data,
                            &InferenceConfig::of(&m.scenario),
                            &m.scenario.expectation,
                        ),
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs several sets as **one** executor batch (so workers drain the whole
/// flattened work list — a few slow members of one set cannot strand the
/// others) and re-slices the outcomes per set, in input order.
pub fn run_sets(sets: &[SweepSet], executor: &dyn Executor) -> Vec<Vec<SweepOutcome>> {
    let experiments: Vec<Experiment> = sets.iter().flat_map(|s| s.compile()).collect();
    let mut outcomes = executor.execute(&experiments).into_iter();
    sets.iter()
        .map(|set| {
            set.members
                .iter()
                .map(|m| SweepOutcome {
                    tick: m.tick.clone(),
                    outcome: outcomes.next().expect("one outcome per experiment"),
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SerialExecutor;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};
    use nni_emu::CcKind;

    fn base() -> Scenario {
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 3.0,
            ..ExperimentParams::default()
        })
    }

    #[test]
    fn seed_axis_fans_out_and_keeps_everything_else() {
        let set = SweepSet::over_seeds("seeds", &base(), &[1, 2, 3]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        for (m, seed) in set.members().iter().zip([1u64, 2, 3]) {
            assert_eq!(m.scenario.measurement.seed, seed);
            assert_eq!(m.scenario.differentiation.len(), 1);
        }
    }

    #[test]
    fn policer_rate_axis_replaces_the_mechanism() {
        let b = base();
        let link = b.differentiation[0].0;
        let set = SweepSet::over_policer_rates("rates", &b, link, 1, 0.01, &[0.5, 0.2]);
        assert_eq!(set.len(), 2);
        let rates: Vec<f64> = set
            .scenarios()
            .map(|s| {
                assert_eq!(s.differentiation.len(), 1, "one mechanism per member");
                match s.differentiation[0].1 {
                    Differentiation::Policing { rate_bps, .. } => rate_bps,
                    _ => panic!("expected a policer"),
                }
            })
            .collect();
        assert!(rates[0] > rates[1], "50% then 20% of capacity");
        assert_eq!(set.members()[0].tick, "50%");
    }

    #[test]
    fn mechanism_axis_installs_placements_and_derives_ground_truth() {
        let b = base();
        let g = &b.topology;
        let l5 = g.link_by_name("l5").unwrap();
        let l1 = g.link_by_name("l1").unwrap();
        let policer = |l| nni_emu::policer_at_fraction(g, l, 1, 0.2, 0.01);
        let set = SweepSet::over_mechanisms(
            "placements",
            &b,
            [
                ("none".to_string(), vec![]),
                ("l5".to_string(), vec![policer(l5)]),
                ("l1+l5".to_string(), vec![policer(l1), policer(l5)]),
                // An explicit None placement is not ground truth.
                (
                    "noop".to_string(),
                    vec![(l5, Differentiation::None), policer(l1)],
                ),
            ],
        );
        let truth: Vec<Vec<_>> = set
            .scenarios()
            .map(|s| s.expectation.nonneutral_links.clone())
            .collect();
        assert_eq!(truth, vec![vec![], vec![l5], vec![l1, l5], vec![l1]]);
        assert!(!set.members()[0].scenario.expectation.expect_flagged);
        assert!(set.members()[2].scenario.expectation.expect_flagged);
    }

    #[test]
    fn rate_axis_keeps_other_mechanisms_in_the_ground_truth() {
        // A multi-policer base: sweeping l14 must keep l5/l20 in the
        // expectation, or the sweep scores correct detectors as wrong.
        let b = crate::library::dual_policer_topology_b(crate::library::TopologyBParams {
            duration_s: 3.0,
            ..crate::library::TopologyBParams::default()
        });
        let l14 = b.topology.link_by_name("l14").unwrap();
        let l20 = b.topology.link_by_name("l20").unwrap();
        let set = SweepSet::over_policer_rates("rates", &b, l14, 1, 0.03, &[0.25]);
        let truth = &set.members()[0].scenario.expectation.nonneutral_links;
        assert!(truth.contains(&l14) && truth.contains(&l20), "{truth:?}");
    }

    #[test]
    #[should_panic(expected = "non-positive token rate")]
    fn invalid_axis_members_panic_with_the_typed_error() {
        let b = base();
        let l5 = b.topology.link_by_name("l5").unwrap();
        // A zero fraction builds a zero-rate policer: the axis constructor
        // must reject it through scenario validation, not hand it to the
        // simulator.
        SweepSet::over_policer_rates("rates", &b, l5, 1, 0.01, &[0.0]);
    }

    #[test]
    fn cc_fleet_axis_rewrites_every_path_profile() {
        let fleet = CcFleet::fleet(&[(CcKind::Cubic, 3), (CcKind::NewReno, 1)]);
        let set = SweepSet::over_cc_fleets(
            "fleets",
            &base(),
            [
                ("cubic".to_string(), CcFleet::Uniform(CcKind::Cubic)),
                ("3:1".to_string(), fleet.clone()),
            ],
        );
        assert_eq!(set.len(), 2);
        assert!(set.members()[1]
            .scenario
            .path_traffic
            .iter()
            .all(|(_, p)| p.cc == fleet));
    }

    #[test]
    fn decision_threshold_axis_shares_one_measurement() {
        let b = base();
        let set = SweepSet::decision_thresholds("thr", &b, &[0.02, 0.04, 0.08]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.members()[1].tick, "0.04");
        let fps: Vec<u64> = set
            .scenarios()
            .map(Scenario::measurement_fingerprint)
            .collect();
        assert!(
            fps.iter().all(|&f| f == b.measurement_fingerprint()),
            "threshold members must share the base's measurement fingerprint"
        );
        for (s, &thr) in set.scenarios().zip(&[0.02, 0.04, 0.08]) {
            match s.inference.mode {
                nni_core::DecisionMode::Clustered { abs_threshold, .. } => {
                    assert_eq!(abs_threshold, thr)
                }
                _ => panic!("threshold axis must produce clustered mode"),
            }
        }
    }

    #[test]
    fn reinfer_matches_the_fused_sweep_with_one_simulation() {
        use nni_measure::MeasurementCache;
        let b = base();
        let set = SweepSet::decision_thresholds("thr", &b, &[0.02, 0.04, 0.30]);
        let cache = MeasurementCache::new();
        let reinferred = set.run_reinfer(&SerialExecutor, &cache);
        assert_eq!(cache.len(), 1, "one distinct measurement, one simulation");
        let fused = set.run(&SerialExecutor);
        for (r, f) in reinferred.iter().zip(&fused) {
            assert_eq!(r.tick, f.tick);
            assert_eq!(r.outcome.inference, f.outcome.inference);
            assert_eq!(r.outcome.path_congestion, f.outcome.path_congestion);
            assert_eq!(r.outcome.correct, f.outcome.correct);
        }
        // Re-running hits the cache: no new distinct sets.
        let hits_before = cache.hits();
        let again = set.run_reinfer(&SerialExecutor, &cache);
        assert_eq!(again, reinferred);
        assert!(cache.hits() > hits_before);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cluster_config_axis_installs_configs_wholesale() {
        let b = base();
        let set = SweepSet::cluster_configs(
            "cfg",
            &b,
            [
                ("exact".to_string(), nni_core::Config::exact()),
                ("clustered".to_string(), nni_core::Config::clustered()),
            ],
        );
        assert_eq!(set.len(), 2);
        assert!(matches!(
            set.members()[0].scenario.inference.mode,
            nni_core::DecisionMode::Exact { .. }
        ));
        assert_eq!(
            set.members()[1].scenario.measurement_fingerprint(),
            b.measurement_fingerprint()
        );
    }

    #[test]
    fn run_sets_is_one_batch_resliced() {
        let b = base();
        let sets = vec![
            SweepSet::over_seeds("a", &b, &[1, 2]),
            SweepSet::over_seeds("b", &b, &[3]),
        ];
        let out = run_sets(&sets, &SerialExecutor);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].len(), out[1].len()), (2, 1));
        // Re-slicing preserves member order: each slot holds its own seed's
        // outcome.
        let direct = sets[1].run(&SerialExecutor);
        assert_eq!(out[1], direct);
    }
}
