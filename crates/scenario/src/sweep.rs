//! Sweeps as first-class sets: a [`SweepSet`] names one experiment family
//! (a Table 2 set, a policer-rate sweep, a CC-fleet comparison, a seed
//! fan-out) and compiles into a batch of [`Experiment`]s that any
//! [`Executor`] runs with one call.
//!
//! A sweep is a base scenario crossed with one *axis* — the parameter the
//! set varies. The constructors here cover the axes the evaluation sweeps:
//! differentiation placement/rate/burst ([`SweepSet::over_policer_rates`],
//! [`SweepSet::over_mechanisms`]), traffic CC fleets
//! ([`SweepSet::over_cc_fleets`]), and seeds ([`SweepSet::over_seeds`]);
//! [`SweepSet::from_points`] admits arbitrary pre-built members (how
//! `nni-bench` expresses Table 2's nine sets).
//!
//! ```
//! use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};
//! use nni_scenario::{SweepSet, SerialExecutor};
//!
//! let base = topology_a_scenario(ExperimentParams {
//!     mechanism: Mechanism::Policing(0.2),
//!     duration_s: 4.0,
//!     ..ExperimentParams::default()
//! });
//! // Three policing rates on the same link, run as one batch.
//! let link = base.differentiation[0].0;
//! let set = SweepSet::over_policer_rates("rates", &base, link, 1, 0.01, &[0.2, 0.3, 0.4]);
//! assert_eq!(set.len(), 3);
//! let outcomes = set.run(&SerialExecutor);
//! assert_eq!(outcomes.len(), 3);
//! assert_eq!(outcomes[0].tick, "20%");
//! ```

use nni_emu::{policer_at_fraction, CcFleet, ClassLabel, Differentiation};
use nni_topology::LinkId;

use crate::executor::Executor;
use crate::experiment::{Experiment, ExperimentOutcome};
use crate::spec::Scenario;

/// One member of a sweep: the x-axis tick label and its scenario.
#[derive(Debug, Clone)]
pub struct SweepMember {
    /// Tick label on the swept axis (e.g. `"20%"`, `"seed 7"`).
    pub tick: String,
    /// The member's full scenario.
    pub scenario: Scenario,
}

/// One member's result, keeping its tick label attached.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The member's tick label.
    pub tick: String,
    /// The member's experiment outcome.
    pub outcome: ExperimentOutcome,
}

/// A named family of experiments varying along one axis.
#[derive(Debug, Clone)]
pub struct SweepSet {
    /// Set name (report headers).
    pub name: String,
    /// Human-readable axis label (the x-axis of the matching figure panel).
    pub axis: String,
    members: Vec<SweepMember>,
}

impl SweepSet {
    /// An empty set; add members with [`push`](SweepSet::push).
    pub fn new(name: impl Into<String>, axis: impl Into<String>) -> SweepSet {
        SweepSet {
            name: name.into(),
            axis: axis.into(),
            members: Vec::new(),
        }
    }

    /// A set from pre-built `(tick, scenario)` points.
    pub fn from_points(
        name: impl Into<String>,
        axis: impl Into<String>,
        points: impl IntoIterator<Item = (String, Scenario)>,
    ) -> SweepSet {
        let mut set = SweepSet::new(name, axis);
        for (tick, scenario) in points {
            set = set.push(tick, scenario);
        }
        set
    }

    /// Appends one member.
    pub fn push(mut self, tick: impl Into<String>, scenario: Scenario) -> SweepSet {
        self.members.push(SweepMember {
            tick: tick.into(),
            scenario,
        });
        self
    }

    /// **Seed axis**: the base scenario at each seed.
    pub fn over_seeds(name: impl Into<String>, base: &Scenario, seeds: &[u64]) -> SweepSet {
        SweepSet::from_points(
            name,
            "seed",
            seeds
                .iter()
                .map(|&seed| (format!("seed {seed}"), base.with_seed(seed))),
        )
    }

    /// **Differentiation-rate axis**: replaces whatever mechanism the base
    /// carries on `link` with a policer on `class` at each fraction of the
    /// link's capacity (burst `burst_s` seconds at the token rate). Ground
    /// truth is re-derived per member: non-neutral on the swept link *and*
    /// on every other mechanised link the base still carries.
    ///
    /// # Panics
    ///
    /// Panics when an edited member fails scenario validation (e.g. a zero
    /// fraction produces a zero-rate policer).
    pub fn over_policer_rates(
        name: impl Into<String>,
        base: &Scenario,
        link: LinkId,
        class: ClassLabel,
        burst_s: f64,
        fractions: &[f64],
    ) -> SweepSet {
        SweepSet::from_points(
            name,
            "policing rate [% of capacity]",
            fractions.iter().map(|&f| {
                let mech = policer_at_fraction(&base.topology, link, class, f, burst_s);
                let mut s = base.clone();
                s.differentiation.retain(|&(l, _)| l != link);
                s.differentiation.push(mech);
                s.expectation =
                    crate::spec::Expectation::nonneutral(mechanised_links(&s.differentiation));
                (
                    format!("{:.0}%", f * 100.0),
                    revalidated(s, "over_policer_rates"),
                )
            }),
        )
    }

    /// **Differentiation-placement axis**: the base scenario with each
    /// `(tick, placements)` alternative installed wholesale (replacing the
    /// base's differentiation). The expectation is derived from the
    /// placements: non-neutral on exactly the mechanised links.
    ///
    /// # Panics
    ///
    /// Panics when a placement alternative fails scenario validation
    /// (zero-rate policer, overlapping lanes, duplicate or unknown links).
    pub fn over_mechanisms(
        name: impl Into<String>,
        base: &Scenario,
        alternatives: impl IntoIterator<Item = (String, Vec<(LinkId, Differentiation)>)>,
    ) -> SweepSet {
        SweepSet::from_points(
            name,
            "differentiation placement",
            alternatives.into_iter().map(|(tick, placements)| {
                let mut s = base.clone();
                s.expectation = crate::spec::Expectation::nonneutral(mechanised_links(&placements));
                s.differentiation = placements;
                (tick, revalidated(s, "over_mechanisms"))
            }),
        )
    }

    /// **CC-fleet axis**: the base scenario with every measured-path
    /// profile's fleet replaced by each `(tick, fleet)` alternative —
    /// how a "CUBIC-only vs 3:1 CUBIC/NewReno" comparison is expressed.
    ///
    /// # Panics
    ///
    /// Panics when a fleet alternative fails scenario validation (an empty
    /// fleet).
    pub fn over_cc_fleets(
        name: impl Into<String>,
        base: &Scenario,
        fleets: impl IntoIterator<Item = (String, CcFleet)>,
    ) -> SweepSet {
        SweepSet::from_points(
            name,
            "congestion-control fleet",
            fleets.into_iter().map(|(tick, fleet)| {
                let mut s = base.clone();
                for (_, profile) in &mut s.path_traffic {
                    profile.cc = fleet.clone();
                }
                (tick, revalidated(s, "over_cc_fleets"))
            }),
        )
    }

    /// The members, in sweep order.
    pub fn members(&self) -> &[SweepMember] {
        &self.members
    }

    /// The member scenarios, in sweep order.
    pub fn scenarios(&self) -> impl Iterator<Item = &Scenario> {
        self.members.iter().map(|m| &m.scenario)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Compiles every member, in sweep order.
    pub fn compile(&self) -> Vec<Experiment> {
        self.members.iter().map(|m| m.scenario.compile()).collect()
    }

    /// Runs the whole set through an executor with one batched call;
    /// results keep their tick labels, in sweep order.
    pub fn run(&self, executor: &dyn Executor) -> Vec<SweepOutcome> {
        let outcomes = executor.execute(&self.compile());
        self.members
            .iter()
            .zip(outcomes)
            .map(|(m, outcome)| SweepOutcome {
                tick: m.tick.clone(),
                outcome,
            })
            .collect()
    }
}

/// The links carrying an actual mechanism (`Differentiation::None` entries
/// excluded) — the ground truth an axis constructor derives per member.
fn mechanised_links(placements: &[(LinkId, Differentiation)]) -> Vec<LinkId> {
    placements
        .iter()
        .filter(|(_, d)| !matches!(d, Differentiation::None))
        .map(|&(l, _)| l)
        .collect()
}

/// Re-validates a member an axis constructor edited: the typed checks of
/// [`ScenarioBuilder::build`](crate::ScenarioBuilder::build) also guard
/// sweep-generated scenarios, so invalid caller input panics here with the
/// precise [`ScenarioError`](crate::ScenarioError) instead of reaching the
/// simulator.
fn revalidated(s: Scenario, axis: &str) -> Scenario {
    let name = s.name.clone();
    crate::spec::ScenarioBuilder::of(s)
        .build()
        .unwrap_or_else(|e| panic!("SweepSet::{axis}: member `{name}` is invalid: {e}"))
}

/// Runs several sets as **one** executor batch (so workers drain the whole
/// flattened work list — a few slow members of one set cannot strand the
/// others) and re-slices the outcomes per set, in input order.
pub fn run_sets(sets: &[SweepSet], executor: &dyn Executor) -> Vec<Vec<SweepOutcome>> {
    let experiments: Vec<Experiment> = sets.iter().flat_map(|s| s.compile()).collect();
    let mut outcomes = executor.execute(&experiments).into_iter();
    sets.iter()
        .map(|set| {
            set.members
                .iter()
                .map(|m| SweepOutcome {
                    tick: m.tick.clone(),
                    outcome: outcomes.next().expect("one outcome per experiment"),
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SerialExecutor;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};
    use nni_emu::CcKind;

    fn base() -> Scenario {
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 3.0,
            ..ExperimentParams::default()
        })
    }

    #[test]
    fn seed_axis_fans_out_and_keeps_everything_else() {
        let set = SweepSet::over_seeds("seeds", &base(), &[1, 2, 3]);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        for (m, seed) in set.members().iter().zip([1u64, 2, 3]) {
            assert_eq!(m.scenario.measurement.seed, seed);
            assert_eq!(m.scenario.differentiation.len(), 1);
        }
    }

    #[test]
    fn policer_rate_axis_replaces_the_mechanism() {
        let b = base();
        let link = b.differentiation[0].0;
        let set = SweepSet::over_policer_rates("rates", &b, link, 1, 0.01, &[0.5, 0.2]);
        assert_eq!(set.len(), 2);
        let rates: Vec<f64> = set
            .scenarios()
            .map(|s| {
                assert_eq!(s.differentiation.len(), 1, "one mechanism per member");
                match s.differentiation[0].1 {
                    Differentiation::Policing { rate_bps, .. } => rate_bps,
                    _ => panic!("expected a policer"),
                }
            })
            .collect();
        assert!(rates[0] > rates[1], "50% then 20% of capacity");
        assert_eq!(set.members()[0].tick, "50%");
    }

    #[test]
    fn mechanism_axis_installs_placements_and_derives_ground_truth() {
        let b = base();
        let g = &b.topology;
        let l5 = g.link_by_name("l5").unwrap();
        let l1 = g.link_by_name("l1").unwrap();
        let policer = |l| nni_emu::policer_at_fraction(g, l, 1, 0.2, 0.01);
        let set = SweepSet::over_mechanisms(
            "placements",
            &b,
            [
                ("none".to_string(), vec![]),
                ("l5".to_string(), vec![policer(l5)]),
                ("l1+l5".to_string(), vec![policer(l1), policer(l5)]),
                // An explicit None placement is not ground truth.
                (
                    "noop".to_string(),
                    vec![(l5, Differentiation::None), policer(l1)],
                ),
            ],
        );
        let truth: Vec<Vec<_>> = set
            .scenarios()
            .map(|s| s.expectation.nonneutral_links.clone())
            .collect();
        assert_eq!(truth, vec![vec![], vec![l5], vec![l1, l5], vec![l1]]);
        assert!(!set.members()[0].scenario.expectation.expect_flagged);
        assert!(set.members()[2].scenario.expectation.expect_flagged);
    }

    #[test]
    fn rate_axis_keeps_other_mechanisms_in_the_ground_truth() {
        // A multi-policer base: sweeping l14 must keep l5/l20 in the
        // expectation, or the sweep scores correct detectors as wrong.
        let b = crate::library::dual_policer_topology_b(crate::library::TopologyBParams {
            duration_s: 3.0,
            ..crate::library::TopologyBParams::default()
        });
        let l14 = b.topology.link_by_name("l14").unwrap();
        let l20 = b.topology.link_by_name("l20").unwrap();
        let set = SweepSet::over_policer_rates("rates", &b, l14, 1, 0.03, &[0.25]);
        let truth = &set.members()[0].scenario.expectation.nonneutral_links;
        assert!(truth.contains(&l14) && truth.contains(&l20), "{truth:?}");
    }

    #[test]
    #[should_panic(expected = "non-positive token rate")]
    fn invalid_axis_members_panic_with_the_typed_error() {
        let b = base();
        let l5 = b.topology.link_by_name("l5").unwrap();
        // A zero fraction builds a zero-rate policer: the axis constructor
        // must reject it through scenario validation, not hand it to the
        // simulator.
        SweepSet::over_policer_rates("rates", &b, l5, 1, 0.01, &[0.0]);
    }

    #[test]
    fn cc_fleet_axis_rewrites_every_path_profile() {
        let fleet = CcFleet::fleet(&[(CcKind::Cubic, 3), (CcKind::NewReno, 1)]);
        let set = SweepSet::over_cc_fleets(
            "fleets",
            &base(),
            [
                ("cubic".to_string(), CcFleet::Uniform(CcKind::Cubic)),
                ("3:1".to_string(), fleet.clone()),
            ],
        );
        assert_eq!(set.len(), 2);
        assert!(set.members()[1]
            .scenario
            .path_traffic
            .iter()
            .all(|(_, p)| p.cc == fleet));
    }

    #[test]
    fn run_sets_is_one_batch_resliced() {
        let b = base();
        let sets = vec![
            SweepSet::over_seeds("a", &b, &[1, 2]),
            SweepSet::over_seeds("b", &b, &[3]),
        ];
        let out = run_sets(&sets, &SerialExecutor);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].len(), out[1].len()), (2, 1));
        // Re-slicing preserves member order: each slot holds its own seed's
        // outcome.
        let direct = sets[1].run(&SerialExecutor);
        assert_eq!(out[1], direct);
    }
}
