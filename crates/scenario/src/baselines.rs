//! Routing the related-work baselines through the same measurements.
//!
//! Each adapter derives a baseline's *input* from a [`MeasurementSet`] — the
//! identical artifact Algorithm 1 consumes, whether it came from the live
//! emulator, an on-disk corpus, or a cache — so boolean tomography,
//! least-squares loss tomography, Glasnost, and NetPolice all see the same
//! run as the paper's algorithm: the apples-to-apples comparison §8 calls
//! for. Concretely:
//!
//! * boolean / loss tomography see the measured path log (and assume
//!   neutrality);
//! * Glasnost additionally gets the class partition the set carries (which
//!   it would know — it crafts the flow types itself);
//! * NetPolice gets per-link per-class probe loss rates, stood in by the
//!   emulator's ground truth (its best case: perfect interior probes). That
//!   is link-level information, which a measurement set deliberately does
//!   not carry — NetPolice alone still takes the raw [`SimReport`].

use nni_emu::SimReport;
use nni_measure::{MeasuredObservations, MeasurementSet, NormalizeConfig};
use nni_tomography::{
    boolean_infer, glasnost_detect, loss_infer, netpolice_detect, BooleanTomography,
    GlasnostVerdict, LinkVerdict, LossTomography, ProbeMeasurements, Snapshot,
};
use nni_topology::{PathId, PathSet};

use crate::infer::InferenceConfig;
use crate::spec::Scenario;

/// Per-interval congestion snapshots over the measured paths (the input
/// boolean tomography explains), at the config's loss threshold.
pub fn snapshots(set: &MeasurementSet, cfg: &InferenceConfig) -> Vec<Snapshot> {
    let g = &set.topology;
    let log = &set.log;
    let thr = cfg.loss_threshold;
    (0..log.interval_count())
        .filter_map(|t| {
            let snap: Vec<bool> = g
                .path_ids()
                .map(|p| {
                    let m = log.sent(t, p);
                    m > 0 && log.lost(t, p) as f64 > thr * m as f64
                })
                .collect();
            // Skip intervals with no information at all.
            let any_active = g.path_ids().any(|p| log.sent(t, p) > 0);
            any_active.then_some(snap)
        })
        .collect()
}

/// Boolean tomography \[22\] over the set's congestion snapshots.
pub fn boolean(set: &MeasurementSet, cfg: &InferenceConfig) -> BooleanTomography {
    boolean_infer(&set.topology, &snapshots(set, cfg))
}

/// Least-squares loss tomography \[7\] over singleton and pair pathsets of
/// every measured path, normalized exactly as the set's own inference run
/// (same threshold, same salted seed).
pub fn loss(set: &MeasurementSet, cfg: &InferenceConfig) -> LossTomography {
    let g = &set.topology;
    let obs = MeasuredObservations::new(
        &set.log,
        NormalizeConfig {
            loss_threshold: cfg.loss_threshold,
            seed: set.provenance.seed ^ cfg.normalize_salt,
            delay: cfg.delay,
        },
    );
    let group: Vec<PathId> = g.path_ids().collect();
    let mut pathsets: Vec<PathSet> = g.path_ids().map(PathSet::single).collect();
    for i in 0..group.len() {
        for j in i + 1..group.len() {
            pathsets.push(PathSet::pair(group[i], group[j]));
        }
    }
    let y: Vec<f64> = pathsets
        .iter()
        .map(|p| {
            use nni_core::Observations;
            obs.pathset_perf(&group, p)
        })
        .collect();
    loss_infer(g, &pathsets, &y)
}

/// A Glasnost-style differential detector \[11\] fed the set's first two
/// classes (the partition Glasnost knows by construction).
pub fn glasnost(set: &MeasurementSet, cfg: &InferenceConfig, margin: f64) -> GlasnostVerdict {
    let empty: &[PathId] = &[];
    let class1 = set.classes.first().map_or(empty, Vec::as_slice);
    let class2 = set.classes.get(1).map_or(empty, Vec::as_slice);
    glasnost_detect(&set.log, class1, class2, cfg.loss_threshold, margin)
}

/// The delay-aware Glasnost variant: compares the two classes' *delay
/// inflation* rates instead of their loss rates, over the same measurement
/// set. A cell counts as inflated when its p90 one-way delay exceeds the
/// feature's threshold against the path's own baseline (min p50 across the
/// log) — exactly the joint indicator's delay half. Returns `None` when the
/// set carries no delay grid (a loss-only v1 set).
///
/// This is the baseline the headline scenario leans on: a deep-buffered
/// shaper delays a class without dropping, so loss-based
/// [`glasnost`] sees nothing while the delay variant flags it.
pub fn glasnost_delay(
    set: &MeasurementSet,
    feature: &nni_core::DelayFeature,
    margin: f64,
) -> Option<GlasnostVerdict> {
    if !set.log.has_delay() {
        return None;
    }
    let empty: &[PathId] = &[];
    let class1 = set.classes.first().map_or(empty, Vec::as_slice);
    let class2 = set.classes.get(1).map_or(empty, Vec::as_slice);
    let inflation_rate = |class: &[PathId]| {
        let log = &set.log;
        let mut inflated = 0usize;
        let mut informative = 0usize;
        for &p in class {
            let Some(baseline) = log.delay_baseline(p) else {
                continue;
            };
            for t in 0..log.interval_count() {
                if let Some(stats) = log.delay(t, p) {
                    informative += 1;
                    if feature.inflated(stats.p90_s, baseline) {
                        inflated += 1;
                    }
                }
            }
        }
        if informative == 0 {
            0.0
        } else {
            inflated as f64 / informative as f64
        }
    };
    let class1_congestion = inflation_rate(class1);
    let class2_congestion = inflation_rate(class2);
    let diff = (class1_congestion - class2_congestion).abs();
    let ratio_split =
        class1_congestion.max(class2_congestion) > 2.0 * class1_congestion.min(class2_congestion);
    Some(GlasnostVerdict {
        class1_congestion,
        class2_congestion,
        differentiated: diff > margin && ratio_split,
    })
}

/// A NetPolice-style per-link comparator \[31\] fed perfect interior probes:
/// the emulator's per-link per-class ground-truth loss rates. The only
/// baseline that needs the raw report — its probes see inside the network,
/// which the measurement-set boundary by definition excludes.
pub fn netpolice(scenario: &Scenario, report: &SimReport, margin: f64) -> Vec<LinkVerdict> {
    let n_classes = scenario.class_label_count();
    let loss_rate: Vec<Vec<f64>> = scenario
        .topology
        .link_ids()
        .map(|l| {
            (0..n_classes)
                .map(|c| {
                    let offered = report.link_truth.class_offered(l, c as u8);
                    if offered == 0 {
                        0.0
                    } else {
                        report.link_truth.class_dropped(l, c as u8) as f64 / offered as f64
                    }
                })
                .collect()
        })
        .collect();
    netpolice_detect(&ProbeMeasurements { loss_rate }, margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};
    use nni_tomography::flagged_links;

    fn short_policing_run() -> (Scenario, MeasurementSet, SimReport) {
        let s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 25.0,
            seed: 11,
            ..ExperimentParams::default()
        });
        let exp = s.compile();
        let report = exp.emulate();
        let set = exp.simulate();
        (s, set, report)
    }

    #[test]
    fn baselines_consume_the_same_run() {
        let (s, set, report) = short_policing_run();
        let cfg = InferenceConfig::of(&s);
        let l5 = s.topology.link_by_name("l5").unwrap();

        // Boolean tomography assumes neutrality and exonerates the culprit.
        let b = boolean(&set, &cfg);
        assert!(
            b.prob(l5) < 0.05,
            "boolean tomography should exonerate l5, got {}",
            b.prob(l5)
        );

        // The least-squares fit leaves a residual (Lemma 1's raw material).
        let ls = loss(&set, &cfg);
        assert!(ls.residual_norm > 0.0);

        // Glasnost (knowing the classes) sees the differentiation.
        let g = glasnost(&set, &cfg, 0.05);
        assert!(g.differentiated);
        assert!(g.class2_congestion > g.class1_congestion);

        // NetPolice with perfect probes localizes the policer.
        let np = netpolice(&s, &report, 0.01);
        assert!(
            flagged_links(&np).contains(&l5),
            "netpolice with perfect probes must flag l5"
        );
    }

    #[test]
    fn snapshots_cover_active_intervals_only() {
        let (s, set, _) = short_policing_run();
        let snaps = snapshots(&set, &InferenceConfig::of(&s));
        assert!(!snaps.is_empty());
        assert!(snaps.iter().all(|s| s.len() == 4));
    }

    #[test]
    fn baselines_accept_a_decoded_set() {
        // The adapters must be indifferent to where the set came from: a
        // binary round trip feeds them identically.
        let (s, set, _) = short_policing_run();
        let cfg = InferenceConfig::of(&s);
        let decoded = nni_measure::codec::decode(&nni_measure::codec::encode(&set)).unwrap();
        assert_eq!(glasnost(&set, &cfg, 0.05), glasnost(&decoded, &cfg, 0.05));
        assert_eq!(snapshots(&set, &cfg), snapshots(&decoded, &cfg));
    }
}
