//! Routing the related-work baselines through the same [`Scenario`].
//!
//! Each adapter derives a baseline's *input* from the scenario plus the
//! experiment's [`SimReport`], so Algorithm 1, boolean tomography,
//! least-squares loss tomography, Glasnost, and NetPolice all consume the
//! identical run — the apples-to-apples comparison §8 calls for:
//!
//! * boolean / loss tomography see the measured path log (and assume
//!   neutrality);
//! * Glasnost additionally gets the class partition (which it would know —
//!   it crafts the flow types itself);
//! * NetPolice gets per-link per-class probe loss rates, stood in by the
//!   emulator's ground truth (its best case: perfect interior probes).

use nni_emu::SimReport;
use nni_measure::{MeasuredObservations, NormalizeConfig};
use nni_tomography::{
    boolean_infer, glasnost_detect, loss_infer, netpolice_detect, BooleanTomography,
    GlasnostVerdict, LinkVerdict, LossTomography, ProbeMeasurements, Snapshot,
};
use nni_topology::{PathId, PathSet};

use crate::spec::Scenario;

/// Per-interval congestion snapshots over the measured paths (the input
/// boolean tomography explains).
pub fn snapshots(scenario: &Scenario, report: &SimReport) -> Vec<Snapshot> {
    let g = &scenario.topology;
    let log = &report.log;
    let thr = scenario.measurement.loss_threshold;
    (0..log.interval_count())
        .filter_map(|t| {
            let snap: Vec<bool> = g
                .path_ids()
                .map(|p| {
                    let m = log.sent(t, p);
                    m > 0 && log.lost(t, p) as f64 > thr * m as f64
                })
                .collect();
            // Skip intervals with no information at all.
            let any_active = g.path_ids().any(|p| log.sent(t, p) > 0);
            any_active.then_some(snap)
        })
        .collect()
}

/// Boolean tomography \[22\] over the scenario's congestion snapshots.
pub fn boolean(scenario: &Scenario, report: &SimReport) -> BooleanTomography {
    boolean_infer(&scenario.topology, &snapshots(scenario, report))
}

/// Least-squares loss tomography \[7\] over singleton and pair pathsets of
/// every measured path, using the scenario's own normalization config.
pub fn loss(scenario: &Scenario, report: &SimReport) -> LossTomography {
    let g = &scenario.topology;
    let m = &scenario.measurement;
    let obs = MeasuredObservations::new(
        &report.log,
        NormalizeConfig {
            loss_threshold: m.loss_threshold,
            seed: m.seed ^ m.normalize_salt,
        },
    );
    let group: Vec<PathId> = g.path_ids().collect();
    let mut pathsets: Vec<PathSet> = g.path_ids().map(PathSet::single).collect();
    for i in 0..group.len() {
        for j in i + 1..group.len() {
            pathsets.push(PathSet::pair(group[i], group[j]));
        }
    }
    let y: Vec<f64> = pathsets
        .iter()
        .map(|p| {
            use nni_core::Observations;
            obs.pathset_perf(&group, p)
        })
        .collect();
    loss_infer(g, &pathsets, &y)
}

/// A Glasnost-style differential detector \[11\] fed the scenario's first two
/// classes (the partition Glasnost knows by construction).
pub fn glasnost(scenario: &Scenario, report: &SimReport, margin: f64) -> GlasnostVerdict {
    let empty: &[PathId] = &[];
    let class1 = scenario.classes.first().map_or(empty, Vec::as_slice);
    let class2 = scenario.classes.get(1).map_or(empty, Vec::as_slice);
    glasnost_detect(
        &report.log,
        class1,
        class2,
        scenario.measurement.loss_threshold,
        margin,
    )
}

/// A NetPolice-style per-link comparator \[31\] fed perfect interior probes:
/// the emulator's per-link per-class ground-truth loss rates.
pub fn netpolice(scenario: &Scenario, report: &SimReport, margin: f64) -> Vec<LinkVerdict> {
    let n_classes = scenario.class_label_count();
    let loss_rate: Vec<Vec<f64>> = scenario
        .topology
        .link_ids()
        .map(|l| {
            (0..n_classes)
                .map(|c| {
                    let offered = report.link_truth.class_offered(l, c as u8);
                    if offered == 0 {
                        0.0
                    } else {
                        report.link_truth.class_dropped(l, c as u8) as f64 / offered as f64
                    }
                })
                .collect()
        })
        .collect();
    netpolice_detect(&ProbeMeasurements { loss_rate }, margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};
    use nni_tomography::flagged_links;

    fn short_policing_run() -> (Scenario, SimReport) {
        let s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 25.0,
            seed: 11,
            ..ExperimentParams::default()
        });
        let report = s.run().report;
        (s, report)
    }

    #[test]
    fn baselines_consume_the_same_run() {
        let (s, report) = short_policing_run();
        let l5 = s.topology.link_by_name("l5").unwrap();

        // Boolean tomography assumes neutrality and exonerates the culprit.
        let b = boolean(&s, &report);
        assert!(
            b.prob(l5) < 0.05,
            "boolean tomography should exonerate l5, got {}",
            b.prob(l5)
        );

        // The least-squares fit leaves a residual (Lemma 1's raw material).
        let ls = loss(&s, &report);
        assert!(ls.residual_norm > 0.0);

        // Glasnost (knowing the classes) sees the differentiation.
        let g = glasnost(&s, &report, 0.05);
        assert!(g.differentiated);
        assert!(g.class2_congestion > g.class1_congestion);

        // NetPolice with perfect probes localizes the policer.
        let np = netpolice(&s, &report, 0.01);
        assert!(
            flagged_links(&np).contains(&l5),
            "netpolice with perfect probes must flag l5"
        );
    }

    #[test]
    fn snapshots_cover_active_intervals_only() {
        let (s, report) = short_policing_run();
        let snaps = snapshots(&s, &report);
        assert!(!snaps.is_empty());
        assert!(snaps.iter().all(|s| s.len() == 4));
    }
}
