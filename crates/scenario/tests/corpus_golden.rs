//! Cross-version compatibility gate for the on-disk corpus format.
//!
//! `corpus/golden/` (committed at the repo root) holds 3 identity-suite
//! scenarios × 2 seeds, recorded with `exp_corpus record --dir corpus/golden
//! --take 3 --seeds 3,11 --jsonl`. This test replays those *committed bytes*
//! through the current decoder and pins, per entry:
//!
//! * the decoded `MeasurementSet` fingerprint — the codec still reads old
//!   corpora bit-for-bit (the version byte is the upgrade path: a future
//!   format bumps it and keeps this decoder);
//! * the `InferenceResult` fingerprint of `infer` over the decoded set
//!   under the default config — inference over replayed measurements stays
//!   stable across releases;
//! * the JSON-lines sidecar parses to the *same* set as the binary entry.
//!
//! If an intentional codec or inference change invalidates the values, run
//! with `NNI_PRINT_CORPUS_GOLDEN=1` and paste the printed table — but think
//! first: a mismatch here means previously recorded corpora now replay
//! differently, which is exactly what this gate exists to catch.

use nni_measure::{jsonl, Corpus, MeasurementSource};
use nni_scenario::{infer, InferenceConfig};

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/golden")
}

/// `(scenario, seed) -> (set fingerprint, inference fingerprint)`.
///
/// Entries appear in corpus replay order: per scenario, seeds ascend
/// *numerically* (3 before 11 — the zero-padded listing fix).
const GOLDEN: [(&str, u64, u64, u64); 6] = [
    (
        "topology-a neutral",
        3,
        0xd1c8ebb96fff04a7,
        0x47f5d527547fc943,
    ),
    (
        "topology-a neutral",
        11,
        0x8c02c9bbec0988b4,
        0x47f5d527547fc943,
    ),
    (
        "topology-a policing 20%",
        3,
        0xbb949e17e3af7608,
        0x4b4f3b011e8ac86a,
    ),
    (
        "topology-a policing 20%",
        11,
        0x9adc7e95bb5ead66,
        0xb6a763b0cccd2b95,
    ),
    (
        "topology-a shaping 30%",
        3,
        0xf98ebeccded6afc8,
        0xb355d0b938ffdec6,
    ),
    (
        "topology-a shaping 30%",
        11,
        0x53b061b4b7382b9c,
        0x17bf11b09c99c9e4,
    ),
];

#[test]
fn committed_corpus_replays_to_golden_fingerprints() {
    let corpus = Corpus::open(golden_dir()).expect("golden corpus exists");
    let entries = corpus.entries().expect("golden corpus lists");
    assert_eq!(entries.len(), GOLDEN.len(), "3 scenarios × 2 seeds");

    let cfg = InferenceConfig::default();
    let mut current: Vec<(String, u64, u64, u64)> = Vec::new();
    for e in &entries {
        let set = e.acquire().expect("committed entry decodes");
        let result = infer(&set, &cfg);
        current.push((
            set.provenance.scenario.clone(),
            set.provenance.seed,
            set.fingerprint(),
            result.fingerprint(),
        ));

        // The human-readable sidecar describes the same measurements.
        let sidecar = e.path().with_extension("jsonl");
        let text = std::fs::read_to_string(&sidecar).expect("jsonl sidecar exists");
        let parsed = jsonl::from_jsonl(&text).expect("jsonl sidecar parses");
        assert_eq!(parsed, set, "sidecar of {} diverged", e.path().display());
    }

    if std::env::var("NNI_PRINT_CORPUS_GOLDEN").is_ok() {
        println!(
            "const GOLDEN: [(&str, u64, u64, u64); {}] = [",
            current.len()
        );
        for (name, seed, set_fp, inf_fp) in &current {
            println!("    (\"{name}\", {seed}, {set_fp:#018x}, {inf_fp:#018x}),");
        }
        println!("];");
    }

    for ((name, seed, set_fp, inf_fp), (g_name, g_seed, g_set, g_inf)) in current.iter().zip(GOLDEN)
    {
        assert_eq!((name.as_str(), *seed), (g_name, g_seed), "entry order");
        assert_eq!(
            *set_fp, g_set,
            "`{name}` seed {seed}: decoded set fingerprint changed — the \
             codec no longer reads committed corpora identically"
        );
        assert_eq!(
            *inf_fp, g_inf,
            "`{name}` seed {seed}: inference over the replayed corpus \
             changed"
        );
    }
}
