//! The O(sims + configs) guarantee of the inference-axis sweep, asserted
//! two ways:
//!
//! * **Sim-count probe** — a 10-config decision-threshold sweep over a
//!   5-scenario set performs *exactly 5* packet-level simulations
//!   (`nni_scenario::simulation_count`), and a second pass performs zero.
//! * **Wall-clock** — the cached path is ≥ 3× faster than naively
//!   re-simulating every member (the measured ratio is far larger; 3× is
//!   the guaranteed floor from the acceptance criteria).
//!
//! The two tests share a mutex: the probe counts *process-wide*
//! simulations, so nothing else in this binary may simulate concurrently.

use std::sync::Mutex;
use std::time::Instant;

use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};
use nni_scenario::{
    reinfer_sets, simulation_count, MeasurementCache, Scenario, SerialExecutor, SweepSet,
};

static SIM_COUNT_GUARD: Mutex<()> = Mutex::new(());

const THRESHOLDS: [f64; 10] = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.15, 0.20];

/// Five distinct base scenarios (different mechanisms and seeds, so five
/// distinct measurement keys).
fn bases(duration_s: f64) -> Vec<Scenario> {
    let mk = |mechanism, seed| {
        topology_a_scenario(ExperimentParams {
            mechanism,
            duration_s,
            seed,
            ..ExperimentParams::default()
        })
    };
    vec![
        mk(Mechanism::Neutral, 1),
        mk(Mechanism::Policing(0.2), 1),
        mk(Mechanism::Policing(0.3), 2),
        mk(Mechanism::Shaping(0.3), 1),
        mk(Mechanism::Neutral, 2),
    ]
}

fn threshold_sets(duration_s: f64) -> Vec<SweepSet> {
    bases(duration_s)
        .iter()
        .enumerate()
        .map(|(i, b)| SweepSet::decision_thresholds(format!("thresholds/{i}"), b, &THRESHOLDS))
        .collect()
}

#[test]
fn threshold_sweep_simulates_each_scenario_exactly_once() {
    let _guard = SIM_COUNT_GUARD.lock().unwrap();
    let sets = threshold_sets(2.0);
    assert_eq!(sets.iter().map(SweepSet::len).sum::<usize>(), 50);

    let cache = MeasurementCache::new();
    let before = simulation_count();
    let outcomes = reinfer_sets(&sets, &SerialExecutor, &cache);
    assert_eq!(
        simulation_count() - before,
        5,
        "10 configs × 5 scenarios must cost exactly 5 simulations"
    );
    assert_eq!(cache.len(), 5);
    assert_eq!(outcomes.len(), 5);
    assert!(outcomes.iter().all(|o| o.len() == 10));

    // Revisiting the same members costs zero further simulations.
    let before = simulation_count();
    let again = reinfer_sets(&sets, &SerialExecutor, &cache);
    assert_eq!(simulation_count() - before, 0, "second pass is all cache");
    assert_eq!(again, outcomes);

    // The seam changes nothing semantically: each member's inference
    // matches its own fused run.
    let fused = nni_scenario::run_sets(&sets, &SerialExecutor);
    for (re_set, fu_set) in outcomes.iter().zip(&fused) {
        for (r, f) in re_set.iter().zip(fu_set) {
            assert_eq!(r.tick, f.tick);
            assert_eq!(r.outcome.inference, f.outcome.inference);
            assert_eq!(r.outcome.path_congestion, f.outcome.path_congestion);
        }
    }
}

#[test]
fn cached_threshold_sweep_is_at_least_3x_faster_than_naive() {
    let _guard = SIM_COUNT_GUARD.lock().unwrap();
    let sets = threshold_sets(2.0);

    // Best-of-two timings on each side: a single descheduling blip on a
    // loaded CI runner must not decide a 3×-floor assertion that actually
    // sits near 10×.

    // Naive fused path: every member re-simulates.
    let mut naive = None;
    let mut naive_elapsed = None;
    for _ in 0..2 {
        let t0 = Instant::now();
        let r = nni_scenario::run_sets(&sets, &SerialExecutor);
        let elapsed = t0.elapsed();
        naive.get_or_insert(r);
        naive_elapsed =
            Some(naive_elapsed.map_or(elapsed, |b: std::time::Duration| b.min(elapsed)));
    }
    let (naive, naive_elapsed) = (naive.unwrap(), naive_elapsed.unwrap());

    // Seam path: 5 simulations + 50 inferences (fresh cache per run).
    let mut cached = None;
    let mut cached_elapsed = None;
    for _ in 0..2 {
        let cache = MeasurementCache::new();
        let t0 = Instant::now();
        let r = reinfer_sets(&sets, &SerialExecutor, &cache);
        let elapsed = t0.elapsed();
        cached.get_or_insert(r);
        cached_elapsed =
            Some(cached_elapsed.map_or(elapsed, |b: std::time::Duration| b.min(elapsed)));
    }
    let (cached, cached_elapsed) = (cached.unwrap(), cached_elapsed.unwrap());

    // Same answers first — speed claims over different results are void.
    for (re_set, fu_set) in cached.iter().zip(&naive) {
        for (r, f) in re_set.iter().zip(fu_set) {
            assert_eq!(r.outcome.inference, f.outcome.inference);
        }
    }
    assert!(
        cached_elapsed * 3 <= naive_elapsed,
        "cached sweep must be ≥3× faster: naive {naive_elapsed:?} vs cached {cached_elapsed:?}"
    );
    println!(
        "threshold sweep (5 scenarios × 10 configs): naive {naive_elapsed:?}, \
         cached {cached_elapsed:?} ({:.1}×)",
        naive_elapsed.as_secs_f64() / cached_elapsed.as_secs_f64()
    );
}
