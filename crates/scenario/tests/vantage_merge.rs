//! Multi-vantage merge at the inference level: a measurement log split
//! across three vantage collectors and merged back loses nothing — batch
//! inference, and the streaming path, land on the same verdict as over
//! the never-split log. (The algebraic merge properties — commutativity,
//! associativity, identity — are property-tested in
//! `crates/measure/tests/proptest_measure.rs`; this file checks the
//! end-to-end consequence on generated scenarios.)

use nni_measure::{MeasurementLog, MeasurementSet};
use nni_scenario::{infer, infer_incremental, InferenceConfig, ScenarioGen};
use nni_topology::PathId;
use proptest::prelude::*;

/// Splits `log` into `ways` vantage logs by interval residue: vantage `v`
/// holds every cell of intervals `t ≡ v (mod ways)` and nothing else.
fn split_vantages(log: &MeasurementLog, ways: usize) -> Vec<MeasurementLog> {
    let mut parts: Vec<MeasurementLog> = (0..ways)
        .map(|_| MeasurementLog::new(log.path_count(), log.interval_s()))
        .collect();
    for t in 0..log.interval_count() {
        let dst = &mut parts[t % ways];
        for p in 0..log.path_count() {
            dst.record_sent(t, PathId(p), log.sent(t, PathId(p)));
            dst.record_lost(t, PathId(p), log.lost(t, PathId(p)));
        }
    }
    parts
}

proptest! {
    // Each case simulates a generated scenario, so the budget is small —
    // the population sweep lives in `invariants.rs`.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Merge-then-infer equals infer-merged: the three-way vantage split
    /// reassembles the exact log, and both batch and incremental inference
    /// over the reassembly are bit-identical to inference over the
    /// original.
    #[test]
    fn merge_then_infer_equals_infer_merged(seed in 0u64..10_000) {
        let scenario = ScenarioGen::new(seed).scenarios(1).pop().unwrap();
        let cfg = InferenceConfig::of(&scenario);
        let set = scenario.compile().simulate();

        let parts = split_vantages(&set.log, 3);
        let mut merged = parts[0].clone();
        merged.merge(&parts[1]).unwrap();
        merged.merge(&parts[2]).unwrap();
        prop_assert_eq!(&merged, &set.log, "the split loses nothing");

        let merged_set = MeasurementSet {
            topology: set.topology.clone(),
            classes: set.classes.clone(),
            log: merged,
            provenance: set.provenance.clone(),
        };
        let reference = infer(&set, &cfg).fingerprint();
        prop_assert_eq!(infer(&merged_set, &cfg).fingerprint(), reference);
        prop_assert_eq!(infer_incremental(&merged_set, &cfg).fingerprint(), reference);
    }
}
