//! The delay-vs-loss discrimination gate: a shaper sized so that joint
//! loss+delay inference flags it while loss-only inference misses it.
//!
//! [`delay_visible_shaper`] gives the targeted class a dedicated lane
//! whose buffer exceeds the class's in-flight ceiling — the lane *never
//! drops*, so the only externally visible signature is queueing delay.
//! One simulation feeds both inference configurations (the measurement
//! set is the seam), making this a pure feature-set comparison over
//! identical measurements.

use nni_scenario::baselines::{glasnost, glasnost_delay};
use nni_scenario::library::{delay_visible_shaper, HEADLINE_DELAY_FEATURE};
use nni_scenario::{
    assert_demand_exceeds_policed_rate, infer_scored, InferenceConfig, MeasurementSet, Scenario,
};

fn headline_run() -> (Scenario, MeasurementSet) {
    let s = delay_visible_shaper(10.0, 42);
    let set = s.compile().simulate();
    (s, set)
}

#[test]
fn joint_inference_flags_what_loss_only_misses() {
    let (s, set) = headline_run();
    // The shaper lane is meaningfully exercised (PR 1 lesson, extended to
    // shaper lanes): demand exceeds the lane rate from multiple slots.
    assert_demand_exceeds_policed_rate(&s);

    let joint_cfg = InferenceConfig::of(&s);
    assert_eq!(joint_cfg.delay, Some(HEADLINE_DELAY_FEATURE));
    let loss_cfg = InferenceConfig {
        delay: None,
        ..joint_cfg
    };

    let joint = infer_scored(&set, &joint_cfg, &s.expectation);
    let loss = infer_scored(&set, &loss_cfg, &s.expectation);

    assert!(
        joint.flagged_nonneutral && joint.correct,
        "joint loss+delay inference must flag the delay-visible shaper"
    );
    assert!(
        !loss.flagged_nonneutral && !loss.correct,
        "loss-only inference must miss it — the lane never drops"
    );
    // The culprit is localized, not just detected: l5 appears in the
    // identified non-neutral sequences.
    let l5 = s.topology.link_by_name("l5").unwrap();
    assert!(
        joint
            .inference
            .nonneutral
            .iter()
            .any(|seq| seq.contains(l5)),
        "joint inference must localize the shaper to l5"
    );
}

#[test]
fn the_shaped_class_loses_almost_nothing() {
    // The physics behind the headline: the lane's buffer (16 MB) exceeds
    // the shaped class's in-flight ceiling (4 slots × 1.875 MB), so the
    // loss signature loss-only inference depends on is simply absent.
    let (s, set) = headline_run();
    let class2 = &s.classes[1];
    let (mut sent, mut lost) = (0u64, 0u64);
    for &p in class2 {
        for t in 0..set.log.interval_count() {
            sent += set.log.sent(t, p);
            lost += set.log.lost(t, p);
        }
    }
    assert!(sent > 0, "the shaped class must actually transmit");
    assert!(
        (lost as f64) < 0.001 * sent as f64,
        "the shaped class must be essentially loss-free, got {lost}/{sent}"
    );
    // …while its delay is visibly inflated: the delay grid is present and
    // some cell trips the headline feature against the path baseline.
    assert!(set.log.has_delay());
    let inflated = class2.iter().any(|&p| {
        let Some(baseline) = set.log.delay_baseline(p) else {
            return false;
        };
        (0..set.log.interval_count()).any(|t| {
            set.log
                .delay(t, p)
                .is_some_and(|d| HEADLINE_DELAY_FEATURE.inflated(d.p90_s, baseline))
        })
    });
    assert!(
        inflated,
        "the shaped class's p90 delay must trip the feature"
    );
}

#[test]
fn glasnost_baselines_split_the_same_way() {
    // The related-work view of the same run: the loss-based Glasnost
    // comparator sees two loss-free classes, the delay variant sees the
    // shaped class's inflation.
    let (s, set) = headline_run();
    let cfg = InferenceConfig::of(&s);
    let g_loss = glasnost(&set, &cfg, 0.05);
    assert!(
        !g_loss.differentiated,
        "loss-based Glasnost must see nothing ({:.3} vs {:.3})",
        g_loss.class1_congestion, g_loss.class2_congestion
    );
    let g_delay = glasnost_delay(&set, &HEADLINE_DELAY_FEATURE, 0.05)
        .expect("the headline set carries a delay grid");
    assert!(
        g_delay.differentiated,
        "delay-based Glasnost must split the classes ({:.3} vs {:.3})",
        g_delay.class1_congestion, g_delay.class2_congestion
    );
    assert!(g_delay.class2_congestion > g_delay.class1_congestion);

    // A loss-only set (delay recording off) degrades the delay variant to
    // None rather than a bogus verdict.
    let mut loss_only = nni_scenario::ScenarioBuilder::of(s.clone());
    loss_only = loss_only.measurement(nni_scenario::MeasurementConfig {
        record_delay: false,
        delay_feature: None,
        ..s.measurement
    });
    let loss_set = loss_only.build().unwrap().compile().simulate();
    assert!(glasnost_delay(&loss_set, &HEADLINE_DELAY_FEATURE, 0.05).is_none());
}
