//! The executor-equivalence guarantee: for the same seeds, the sharded
//! executor produces `ExperimentOutcome`s bit-identical to the serial
//! executor's, in the same order, for any worker count.

use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};
use nni_scenario::{seed_sweep, Executor, SerialExecutor, ShardedExecutor};

#[test]
fn sharded_outcomes_are_bit_identical_to_serial() {
    // A mixed batch: (2 scenarios × 2 seeds) of short topology-A runs.
    let policing = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: 6.0,
        ..ExperimentParams::default()
    });
    let neutral = topology_a_scenario(ExperimentParams {
        duration_s: 6.0,
        ..ExperimentParams::default()
    });
    let mut experiments = seed_sweep(&policing, &[1, 2]);
    experiments.extend(seed_sweep(&neutral, &[1, 2]));

    let serial = SerialExecutor.execute(&experiments);
    assert_eq!(serial.len(), 4);

    // More workers than experiments is legal; oversubscription must not
    // change results or order either.
    for workers in [2, 8] {
        let sharded = ShardedExecutor::new(workers).execute(&experiments);
        assert_eq!(
            serial, sharded,
            "sharded({workers}) outcomes must be bit-identical to serial, in input order"
        );
    }
}

#[test]
fn seed_sweep_orders_by_seed_not_by_completion() {
    let scenario = topology_a_scenario(ExperimentParams {
        duration_s: 6.0,
        ..ExperimentParams::default()
    });
    let seeds = [9u64, 3, 7];
    let experiments = seed_sweep(&scenario, &seeds);
    for (exp, &seed) in experiments.iter().zip(&seeds) {
        assert_eq!(exp.scenario().measurement.seed, seed);
    }
    // Each seed's outcome lands at its seed's index even when a worker pool
    // finishes them out of order.
    let outcomes = ShardedExecutor::new(3).execute(&experiments);
    for (out, exp) in outcomes.iter().zip(&experiments) {
        assert_eq!(out, &exp.run(), "slot must hold its own seed's outcome");
    }
}
