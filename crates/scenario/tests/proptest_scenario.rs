//! Property tests of scenario validation: every spec [`ScenarioGen`] emits
//! re-validates `Ok` through [`ScenarioBuilder::build`], and targeted
//! *invalid* mutations surface as the expected typed [`ScenarioError`] —
//! never as a panic.

use proptest::prelude::*;

use nni_emu::{CcFleet, Differentiation, ShapeLaneConfig};
use nni_scenario::{
    QueueOverride, Scenario, ScenarioBuilder, ScenarioError, ScenarioGen, TrafficProfile,
};
use nni_topology::{LinkId, PathId};

/// A link of the scenario's topology that carries no differentiation and no
/// queue override yet — mutations target it so the *mutated* field is what
/// validation trips over, not a duplicate.
fn free_link(s: &Scenario) -> LinkId {
    (0..s.topology.link_count())
        .map(LinkId)
        .find(|l| {
            s.differentiation.iter().all(|&(d, _)| d != *l)
                && s.queue_overrides.iter().all(|&(q, _)| q != *l)
        })
        .expect("every generated topology has a spare link")
}

fn lane(class: u8) -> ShapeLaneConfig {
    ShapeLaneConfig {
        class,
        rate_bps: 10e6,
        burst_bytes: 3000.0,
        buffer_bytes: 15_000,
    }
}

/// Applies the `kind`-th invalid mutation and returns the error
/// [`ScenarioBuilder::build`] must report for it.
fn mutate(mut s: Scenario, kind: usize) -> (Scenario, ScenarioError) {
    match kind {
        // Empty congestion-control fleet on a measured path.
        0 => {
            s.path_traffic[0].1.cc = CcFleet::Mixed(Vec::new());
            (s, ScenarioError::EmptyCcFleet)
        }
        // Zero-rate policer.
        1 => {
            let l = free_link(&s);
            s.differentiation.push((
                l,
                Differentiation::Policing {
                    class: 1,
                    rate_bps: 0.0,
                    burst_bytes: 3000.0,
                },
            ));
            (s, ScenarioError::ZeroRatePolicer(l))
        }
        // Two shaper lanes targeting the same class.
        2 => {
            let l = free_link(&s);
            s.differentiation.push((
                l,
                Differentiation::Shaping {
                    lanes: vec![lane(0), lane(0)],
                },
            ));
            (s, ScenarioError::OverlappingLanes(l))
        }
        // A shaper with no lanes.
        3 => {
            let l = free_link(&s);
            s.differentiation
                .push((l, Differentiation::Shaping { lanes: Vec::new() }));
            (s, ScenarioError::EmptyShaper(l))
        }
        // Zero-capacity queue override.
        4 => {
            let l = free_link(&s);
            s.queue_overrides.push((l, QueueOverride::Packets(0)));
            (s, ScenarioError::BadQueueOverride(l))
        }
        // Duplicate queue override on one link.
        5 => {
            let l = free_link(&s);
            s.queue_overrides.push((l, QueueOverride::Bytes(30_000)));
            s.queue_overrides.push((l, QueueOverride::Packets(20)));
            (s, ScenarioError::DuplicateQueueOverride(l))
        }
        // Background route over a link the topology does not have.
        6 => {
            let bogus = LinkId(s.topology.link_count() + 17);
            s.background.push(nni_scenario::BackgroundTraffic {
                links: vec![bogus],
                profiles: Vec::new(),
            });
            (s, ScenarioError::UnknownLink(bogus))
        }
        // A path listed in two classes.
        7 => {
            let p = PathId(0);
            s.classes = vec![vec![p], vec![p]];
            (s, ScenarioError::OverlappingClasses(p))
        }
        // Traffic on a path the topology does not have.
        8 => {
            let bogus = PathId(s.topology.path_count() + 3);
            s.path_traffic.push((
                bogus,
                TrafficProfile::pareto_bits(0, nni_emu::CcKind::Cubic, 1e6, 1.0, 1),
            ));
            (s, ScenarioError::UnknownPath(bogus))
        }
        // A non-positive measurement window.
        _ => {
            s.measurement.interval_s = 0.0;
            (s, ScenarioError::BadWindow)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_specs_rebuild_ok(seed in 0u64..1_000_000) {
        let s = ScenarioGen::new(seed).scenario();
        let rebuilt = ScenarioBuilder::of(s).build();
        prop_assert!(rebuilt.is_ok(), "generated spec must re-validate: {rebuilt:?}");
    }

    #[test]
    fn invalid_mutations_yield_the_expected_typed_error(
        seed in 0u64..1_000_000,
        kind in 0usize..10,
    ) {
        let s = ScenarioGen::new(seed).scenario();
        let (mutated, expected) = mutate(s, kind);
        // Never a panic: build returns the precise typed error.
        let got = ScenarioBuilder::of(mutated).build().unwrap_err();
        prop_assert_eq!(got, expected, "mutation kind {}", kind);
    }
}
