//! Randomized scenario-invariant harness: ~24 seeded random scenarios from
//! [`ScenarioGen`], grouped into [`SweepSet`]s and checked for the
//! properties that must hold for *any* valid scenario, hand-written or not:
//!
//! 1. **Executor identity** — `SerialExecutor` and `ShardedExecutor`
//!    produce bit-identical outcomes, in input order, on whole sweep sets.
//! 2. **Packet conservation** — every sent segment is delivered, dropped,
//!    or still in flight at the end of the run; the slab-leak invariant
//!    (`live() == 0`) is asserted inside `Simulator::run` itself, so every
//!    completed run already proves it.
//! 3. **Neutral honesty** — scenarios with no `Differentiation` must not be
//!    flagged non-neutral.
//!
//! The population seed is pinned for reproducibility and CI: override with
//! `NNI_INVARIANT_SEED=<u64>` to explore a different population locally.
//! Caveat for explorers: the generator's defaults keep scenarios in the
//! moderately-congested regime where neutral verdicts are statistically
//! stable (see `GenConfig`), but at these short durations a few seeds per
//! hundred still produce a borderline neutral population — a detector
//! noise floor, not an emulator bug. The pinned seed is verified clean.

use nni_scenario::{
    run_sets, Scenario, ScenarioGen, SerialExecutor, ShardedExecutor, SweepOutcome, SweepSet,
};

fn invariant_seed() -> u64 {
    std::env::var("NNI_INVARIANT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// 24 scenarios: 16 from the full generator (differentiated and neutral
/// mixed) plus 8 forced-neutral controls.
fn population() -> Vec<Scenario> {
    let seed = invariant_seed();
    let mut pop = ScenarioGen::new(seed).scenarios(16);
    pop.extend(ScenarioGen::neutral_only(seed.wrapping_add(0x9E37_79B9)).scenarios(8));
    pop
}

/// The population as sweep sets of six — executor identity is asserted on
/// the *set* surface (compile + batch + re-slice), not just on single runs.
fn population_sets() -> Vec<SweepSet> {
    population()
        .chunks(6)
        .enumerate()
        .map(|(i, chunk)| {
            SweepSet::from_points(
                format!("random set {i}"),
                "member",
                chunk.iter().map(|s| (s.name.clone(), s.clone())),
            )
        })
        .collect()
}

#[test]
fn randomized_population_upholds_the_invariants() {
    let sets = population_sets();
    let total: usize = sets.iter().map(SweepSet::len).sum();
    assert_eq!(total, 24);

    // One serial and one sharded pass over the whole population.
    let serial = run_sets(&sets, &SerialExecutor);
    let sharded = run_sets(&sets, &ShardedExecutor::new(3));

    // (1) Executor identity on sweep sets, member for member.
    assert_eq!(
        serial, sharded,
        "sharded sweep-set outcomes must be bit-identical to serial"
    );

    for (set, outcomes) in sets.iter().zip(&serial) {
        for (member, SweepOutcome { tick, outcome }) in set.members().iter().zip(outcomes) {
            let s = &member.scenario;
            let report = &outcome.report;
            // (2) Conservation: sent == delivered + dropped + in flight.
            // (`in_flight()` is defined as the difference, so assert the
            // pieces are sane rather than the tautology.)
            assert!(
                report.segments_sent > 0,
                "{tick}: a generated scenario must move traffic"
            );
            assert!(
                report.segments_delivered + report.segments_dropped <= report.segments_sent,
                "{tick}: delivered {} + dropped {} exceed sent {}",
                report.segments_delivered,
                report.segments_dropped,
                report.segments_sent
            );
            // End-of-run in-flight is bounded by what the windows could
            // hold: it must be a small fraction of everything sent.
            assert!(
                report.in_flight() <= report.segments_sent / 2,
                "{tick}: {} of {} segments unaccounted at end of run",
                report.in_flight(),
                report.segments_sent
            );
            // The measured log covers every path of the topology.
            assert_eq!(outcome.path_congestion.len(), s.topology.path_count());

            // (3) Neutral honesty.
            if s.differentiation.is_empty() {
                assert!(
                    !outcome.flagged_nonneutral,
                    "{tick}: neutral scenario flagged non-neutral"
                );
                assert!(
                    outcome.correct,
                    "{tick}: neutral verdict must score correct"
                );
            }
        }
    }
}

#[test]
fn sweep_set_run_matches_run_sets_slicing() {
    // `SweepSet::run` on one set must equal that set's slice of the batched
    // `run_sets` — the re-slicing cannot mix members up.
    let sets = population_sets();
    let batched = run_sets(&sets[..1], &SerialExecutor);
    let direct = sets[0].run(&SerialExecutor);
    assert_eq!(batched[0], direct);
}

#[test]
fn oversubscribed_workers_are_still_identical() {
    // More workers than members: claiming order differs run to run, the
    // outcome slots must not.
    let set = &population_sets()[1];
    let serial = set.run(&SerialExecutor);
    for workers in [2, 16] {
        assert_eq!(serial, set.run(&ShardedExecutor::new(workers)));
    }
}
