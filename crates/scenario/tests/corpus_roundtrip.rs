//! The serialization half of the simulate/infer seam, gated two ways:
//!
//! 1. **Golden identity** — for all 14 scenarios of the shared
//!    [`identity_suite`] × 3 seeds, `infer` over a binary encode→decode
//!    round trip of the `MeasurementSet` is bit-identical to the inline
//!    (fused) `Experiment::run` inference — the measurement-set boundary
//!    loses nothing the algorithm consumes.
//! 2. **Property round trips** — randomly generated scenarios survive
//!    binary encode→decode and JSON-lines dump→parse bit-identically
//!    (`PartialEq` over every field, fingerprints included).

use proptest::prelude::*;

use nni_measure::{codec, jsonl, MeasurementSet, Provenance};
use nni_scenario::library::identity_suite;
use nni_scenario::{infer, InferenceConfig, ScenarioGen};
use nni_topology::PathId;

const SEEDS: [u64; 3] = [1, 7, 42];

#[test]
fn infer_over_decoded_corpus_matches_inline_run_on_the_identity_suite() {
    let scenarios = identity_suite();
    assert_eq!(scenarios.len(), 14, "the golden population is pinned");
    for s in &scenarios {
        for &seed in &SEEDS {
            let s = s.with_seed(seed);
            let exp = s.compile();
            let fused = exp.run();
            let set = exp.package(fused.report.log.clone());

            // Binary round trip: bit-identical set…
            let decoded = codec::decode(&codec::encode(&set)).expect("decodes");
            assert_eq!(set, decoded, "`{}` seed {seed}: set round trip", s.name);
            assert_eq!(set.fingerprint(), decoded.fingerprint());

            // …and bit-identical inference through the free `infer` layer.
            let cfg = InferenceConfig::of(&s);
            let replayed = infer(&decoded, &cfg);
            assert_eq!(
                replayed, fused.inference,
                "`{}` seed {seed}: infer(decode(encode(set))) diverged from \
                 the fused Experiment::run",
                s.name
            );
            assert_eq!(replayed.fingerprint(), fused.inference.fingerprint());

            // The JSON-lines dump is equally lossless.
            let parsed = jsonl::from_jsonl(&jsonl::to_jsonl(&set)).expect("parses");
            assert_eq!(set, parsed, "`{}` seed {seed}: jsonl round trip", s.name);
        }
    }
}

/// A synthetic measurement set over a generated scenario's real topology
/// and classes, with log counts drawn from the seed — broad shape coverage
/// without paying for emulation.
fn synthetic_set(gen_seed: u64, intervals: usize) -> MeasurementSet {
    let s = ScenarioGen::new(gen_seed).scenario();
    let n_paths = s.topology.path_count();
    let mut log = nni_measure::MeasurementLog::new(n_paths.max(1), s.measurement.interval_s);
    let mut x = gen_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        // xorshift64*: cheap deterministic count stream.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for t in 0..intervals {
        for p in 0..n_paths {
            let sent = next() % 5_000;
            let lost = if sent == 0 {
                0
            } else {
                next() % (sent / 10 + 1)
            };
            log.record_sent(t, PathId(p), sent);
            log.record_lost(t, PathId(p), lost);
        }
    }
    MeasurementSet {
        provenance: Provenance {
            scenario: s.name.clone(),
            scenario_fingerprint: s.measurement_fingerprint(),
            seed: s.measurement.seed,
            build: nni_emu::build_fingerprint(),
        },
        topology: s.topology.clone(),
        classes: s.classes.clone(),
        log,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Synthetic sets over generated topologies: binary and JSON-lines
    /// round trips are bit-identical for arbitrary shapes and counts.
    #[test]
    fn generated_sets_round_trip_bit_identically(
        seed in 0u64..1_000_000,
        intervals in 0usize..40,
    ) {
        let set = synthetic_set(seed, intervals);
        let decoded = codec::decode(&codec::encode(&set)).expect("decodes");
        prop_assert_eq!(&set, &decoded);
        let parsed = jsonl::from_jsonl(&jsonl::to_jsonl(&set)).expect("parses");
        prop_assert_eq!(&set, &parsed);
        prop_assert_eq!(set.fingerprint(), decoded.fingerprint());
        prop_assert_eq!(set.fingerprint(), parsed.fingerprint());
    }
}

proptest! {
    // Fewer cases: each one pays for a real (short) emulation.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fully *simulated* generated scenarios (short windows) round trip and
    /// re-infer identically to the fused path — the end-to-end property on
    /// top of the synthetic-shape coverage above.
    #[test]
    fn simulated_generated_scenarios_replay_identically(seed in 0u64..1_000_000) {
        let mut s = ScenarioGen::new(seed).scenario();
        s.measurement.duration_s = 1.5;
        s.measurement.warmup_s = Some(0.25);
        let exp = s.compile();
        let fused = exp.run();
        let set = exp.package(fused.report.log.clone());
        let decoded = codec::decode(&codec::encode(&set)).expect("decodes");
        prop_assert_eq!(&set, &decoded);
        let replayed = infer(&decoded, &InferenceConfig::of(&s));
        prop_assert_eq!(replayed, fused.inference);
    }
}
