//! Fast smoke test over the ready-made scenario library: every scenario
//! builds, compiles, and runs end to end at a short duration, producing a
//! structurally sound outcome. Verdict calibration is exercised by the
//! full-length `exp_*` binaries, not here.

use nni_scenario::library::{
    asymmetric_rtt_neutral, dual_link_shaping, dual_policer_topology_b, topology_a_scenario,
    topology_b_scenario, ExperimentParams, Mechanism, TopologyBParams,
};
use nni_scenario::{compile_all, Executor, Scenario, ShardedExecutor};

fn short_b() -> TopologyBParams {
    TopologyBParams {
        duration_s: 6.0,
        ..TopologyBParams::default()
    }
}

fn library_scenarios() -> Vec<Scenario> {
    vec![
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Shaping(0.2),
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_b_scenario(short_b()),
        dual_policer_topology_b(short_b()),
        asymmetric_rtt_neutral(6.0, 3),
        dual_link_shaping(short_b()),
    ]
}

#[test]
fn every_library_scenario_runs_end_to_end() {
    let scenarios = library_scenarios();
    // One sharded batch smokes the executor path at the same time.
    let outcomes = ShardedExecutor::new(2).execute(&compile_all(&scenarios));
    assert_eq!(outcomes.len(), scenarios.len());
    for (scenario, out) in scenarios.iter().zip(&outcomes) {
        assert_eq!(
            out.path_congestion.len(),
            scenario.topology.path_count(),
            "{}: per-path congestion must cover every measured path",
            scenario.name
        );
        assert!(
            out.report.segments_sent > 0,
            "{}: traffic must flow",
            scenario.name
        );
        assert!(
            out.report.segments_delivered > 0,
            "{}: packets must arrive",
            scenario.name
        );
        assert_eq!(
            out.report.queue_traces.len(),
            scenario.topology.link_count(),
            "{}: every link gets a queue trace",
            scenario.name
        );
    }
    // The differentiating variants actually exercise their mechanisms:
    // packets are dropped or delayed beyond what the neutral control sees.
    let shaped = &outcomes[4];
    assert!(
        shaped.report.segments_dropped > 0,
        "dual-link shaping at 20% must drop under Table 3 load"
    );
}
