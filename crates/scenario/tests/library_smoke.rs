//! Fast smoke test over the ready-made scenario library: every scenario
//! builds, compiles, and runs end to end at a short duration, producing a
//! structurally sound outcome. Verdict calibration is exercised by the
//! full-length `exp_*` binaries, not here.

use nni_scenario::library::{
    asymmetric_rtt_neutral, deep_buffer_policing, dual_link_shaping, dual_policer_topology_b,
    mixed_cc_neutral_control, mixed_cc_policer_contention, policer_rate_sweep_topology_b,
    shallow_buffer_neutral_control, topology_a_scenario, topology_b_scenario, ExperimentParams,
    Mechanism, TopologyBParams,
};
use nni_scenario::{compile_all, Executor, Scenario, SerialExecutor, ShardedExecutor};

fn short_b() -> TopologyBParams {
    TopologyBParams {
        duration_s: 6.0,
        ..TopologyBParams::default()
    }
}

fn library_scenarios() -> Vec<Scenario> {
    vec![
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Shaping(0.2),
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_b_scenario(short_b()),
        dual_policer_topology_b(short_b()),
        asymmetric_rtt_neutral(6.0, 3),
        dual_link_shaping(short_b()),
        mixed_cc_policer_contention(6.0, 3),
        mixed_cc_neutral_control(6.0, 3),
        shallow_buffer_neutral_control(6.0, 3),
        deep_buffer_policing(6.0, 3),
    ]
}

#[test]
fn every_library_scenario_runs_end_to_end() {
    let scenarios = library_scenarios();
    // One sharded batch smokes the executor path at the same time.
    let outcomes = ShardedExecutor::new(2).execute(&compile_all(&scenarios));
    assert_eq!(outcomes.len(), scenarios.len());
    for (scenario, out) in scenarios.iter().zip(&outcomes) {
        assert_eq!(
            out.path_congestion.len(),
            scenario.topology.path_count(),
            "{}: per-path congestion must cover every measured path",
            scenario.name
        );
        assert!(
            out.report.segments_sent > 0,
            "{}: traffic must flow",
            scenario.name
        );
        assert!(
            out.report.segments_delivered > 0,
            "{}: packets must arrive",
            scenario.name
        );
        assert_eq!(
            out.report.queue_traces.len(),
            scenario.topology.link_count(),
            "{}: every link gets a queue trace",
            scenario.name
        );
    }
    // The differentiating variants actually exercise their mechanisms:
    // packets are dropped or delayed beyond what the neutral control sees.
    let shaped = &outcomes[4];
    assert!(
        shaped.report.segments_dropped > 0,
        "dual-link shaping at 20% must drop under Table 3 load"
    );
    // The shallow-buffer override bites: with the shared queue cut from
    // 2.5 MB to 30 packets, the same load drops far more than it would
    // with the default buffer (which this duration barely overflows).
    let shallow = &outcomes[7];
    assert!(
        shallow.report.segments_dropped > 0,
        "a 30-packet shared buffer must overflow under 40 flows/path"
    );
}

#[test]
fn policer_rate_sweep_smokes_end_to_end() {
    // The library's multi-rate sweep runs as one batch; higher token rates
    // police the long-flow class less.
    let sweep = policer_rate_sweep_topology_b(short_b());
    let outcomes = sweep.run(&SerialExecutor);
    assert_eq!(outcomes.len(), 3);
    for member in &outcomes {
        assert!(
            member.outcome.report.segments_dropped > 0,
            "{}: the policed network must drop",
            member.tick
        );
    }
    // Every member's policer bites its *targeted* class on l14. (Drop
    // counts are deliberately not compared across rates: TCP adapts, so a
    // harsher policer can collapse its flows into offering less and drop
    // fewer packets in absolute terms.)
    let l14 = sweep.members()[0]
        .scenario
        .topology
        .link_by_name("l14")
        .unwrap();
    for member in &outcomes {
        assert!(
            member.outcome.report.link_truth.class_dropped(l14, 1) > 0,
            "{}: the policer must drop targeted-class packets",
            member.tick
        );
    }
}
