//! Cross-implementation identity test: the emulator rewrite (slab-backed
//! packets, compact event queue, O(1) flow state — PR 3) must leave every
//! `SimReport` bit-for-bit identical, seed for seed.
//!
//! The `GOLDEN` fingerprints below were captured by running every scenario
//! of `nni_scenario::library` on the pre-rewrite emulator (BTreeMap flow
//! state, `BinaryHeap<Event::Arrive(Packet)>` event queue) at three seeds.
//! The fingerprint folds **every** field of the report — the per-interval
//! measurement log, the per-link/per-class ground truth, the queue traces
//! (f64 bit patterns), and the global counters — through FNV-1a, so it is
//! exactly as strict as `PartialEq` on `SimReport`.
//!
//! If an intentional behaviour change ever invalidates these values, rerun
//! with `NNI_PRINT_FINGERPRINTS=1` and paste the printed table — but for a
//! pure performance PR, a mismatch here means the optimisation changed
//! simulation behaviour and must be fixed, not re-golded.

use nni_emu::SimReport;
use nni_scenario::library::{
    asymmetric_rtt_neutral, dual_link_shaping, dual_policer_topology_b, topology_a_scenario,
    topology_b_scenario, ExperimentParams, Mechanism, TopologyBParams,
};
use nni_scenario::Scenario;
use nni_topology::{LinkId, PathId};

const SEEDS: [u64; 3] = [1, 7, 42];

/// FNV-1a over a stream of u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn f64(&mut self, x: f64) {
        self.word(x.to_bits());
    }
}

/// Folds every field of a `SimReport` into one u64 — as strict as
/// `PartialEq` on the full report.
fn fingerprint(report: &SimReport) -> u64 {
    let mut h = Fnv::new();
    // Global counters.
    h.word(report.completed_flows as u64);
    h.word(report.segments_sent);
    h.word(report.segments_delivered);
    h.word(report.segments_dropped);
    // Measurement log: every (interval, path) cell.
    let log = &report.log;
    h.f64(log.interval_s());
    h.word(log.path_count() as u64);
    h.word(log.interval_count() as u64);
    for t in 0..log.interval_count() {
        for p in 0..log.path_count() {
            h.word(log.sent(t, PathId(p)));
            h.word(log.lost(t, PathId(p)));
        }
    }
    // Ground truth: every (interval, link, class) cell.
    let truth = &report.link_truth;
    h.word(truth.link_count() as u64);
    h.word(truth.class_count() as u64);
    h.word(truth.interval_count() as u64);
    for t in 0..truth.interval_count() {
        for l in 0..truth.link_count() {
            for c in 0..truth.class_count() {
                h.word(truth.offered_at(t, LinkId(l), c as u8));
                h.word(truth.dropped_at(t, LinkId(l), c as u8));
            }
        }
    }
    // Queue traces: every sample, f64 bit patterns included.
    h.word(report.queue_traces.len() as u64);
    for trace in &report.queue_traces {
        h.word(trace.times_s.len() as u64);
        for &t in &trace.times_s {
            h.f64(t);
        }
        for &b in &trace.bytes {
            h.word(b);
        }
    }
    h.0
}

fn short_b() -> TopologyBParams {
    TopologyBParams {
        duration_s: 5.0,
        ..TopologyBParams::default()
    }
}

/// Every scenario family in the library, at identity-test durations.
fn library() -> Vec<Scenario> {
    let mut scenarios = vec![
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Neutral,
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Shaping(0.3),
            duration_s: 6.0,
            ..ExperimentParams::default()
        }),
        topology_b_scenario(short_b()),
        dual_policer_topology_b(short_b()),
        asymmetric_rtt_neutral(6.0, 42),
        dual_link_shaping(short_b()),
    ];
    // A short warm-up keeps several post-warmup intervals in the
    // fingerprinted log (the default 5 s would drop nearly everything).
    for s in &mut scenarios {
        s.measurement.warmup_s = Some(1.0);
    }
    scenarios
}

/// `(scenario index, seed index) -> fingerprint` captured on the
/// pre-rewrite emulator. Scenario order matches `library()`, seed order
/// matches `SEEDS`.
const GOLDEN: [[u64; 3]; 7] = [
    [0x4075257e61dba9c9, 0xf57aea5e7bff61d5, 0x51739f6eb8d8822c],
    [0x03f646de65b6c71c, 0x26fe2473458c8545, 0x6cbace9da1cfb086],
    [0x67a3910a39924641, 0x4685ac7b786d4f16, 0x5564b1131dcd08b3],
    [0x7dc6c60496acb66f, 0xbab9d3f23d52824d, 0x8a0d968860ed09dc],
    [0xb449c5797eb514c1, 0x75d17f7d65f4c138, 0xe322c6f49d73d35d],
    [0x23b3f9a6b9ec4f3c, 0xc684fc5994e2976d, 0xad828cb9391948a8],
    [0xdaad1023d83cd49e, 0xc49dbabfa4b07339, 0x6a65096b8d297f28],
];

#[test]
fn sim_reports_match_pre_rewrite_golden_fingerprints() {
    let scenarios = library();
    let mut current = Vec::new();
    for s in &scenarios {
        let mut row = Vec::new();
        for &seed in &SEEDS {
            row.push(fingerprint(&s.with_seed(seed).compile().simulate()));
        }
        current.push(row);
    }
    if std::env::var("NNI_PRINT_FINGERPRINTS").is_ok() {
        println!("const GOLDEN: [[u64; 3]; {}] = [", scenarios.len());
        for row in &current {
            println!(
                "    [{}],",
                row.iter()
                    .map(|f| format!("{f:#018x}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        println!("];");
    }
    for (i, s) in scenarios.iter().enumerate() {
        for (j, &seed) in SEEDS.iter().enumerate() {
            assert_eq!(
                current[i][j], GOLDEN[i][j],
                "SimReport diverged from the pre-rewrite emulator: \
                 scenario `{}` seed {seed}",
                s.name
            );
        }
    }
}

/// Identity must also hold between two runs of the *same* build — a cheap
/// canary separating "rewrite changed behaviour" from "emulator is
/// nondeterministic" when the golden test fails.
#[test]
fn fingerprints_are_deterministic_within_build() {
    let s = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.3),
        duration_s: 5.0,
        ..ExperimentParams::default()
    });
    let a = fingerprint(&s.with_seed(9).compile().simulate());
    let b = fingerprint(&s.with_seed(9).compile().simulate());
    assert_eq!(a, b);
}
