//! Cross-implementation identity test: the emulator rewrite (slab-backed
//! packets, compact event queue, O(1) flow state — PR 3) must leave every
//! `SimReport` bit-for-bit identical, seed for seed.
//!
//! The `GOLDEN` fingerprints below were captured by running every scenario
//! of `nni_scenario::library` on the pre-rewrite emulator (BTreeMap flow
//! state, `BinaryHeap<Event::Arrive(Packet)>` event queue) at three seeds.
//! The fingerprint folds **every** field of the report — the per-interval
//! measurement log, the per-link/per-class ground truth, the queue traces
//! (f64 bit patterns), and the global counters — through FNV-1a, so it is
//! exactly as strict as `PartialEq` on `SimReport`.
//!
//! If an intentional behaviour change ever invalidates these values, rerun
//! with `NNI_PRINT_FINGERPRINTS=1` and paste the printed table — but for a
//! pure performance PR, a mismatch here means the optimisation changed
//! simulation behaviour and must be fixed, not re-golded.

use nni_emu::SimReport;
use nni_measure::Fnv;
use nni_scenario::library::{identity_suite, topology_a_scenario, ExperimentParams, Mechanism};
use nni_scenario::Scenario;
use nni_topology::{LinkId, PathId};

const SEEDS: [u64; 3] = [1, 7, 42];

/// Folds every field of a `SimReport` into one u64 — as strict as
/// `PartialEq` on the full report.
fn fingerprint(report: &SimReport) -> u64 {
    let mut h = Fnv::new();
    // Global counters.
    h.word(report.completed_flows as u64);
    h.word(report.segments_sent);
    h.word(report.segments_delivered);
    h.word(report.segments_dropped);
    // Measurement log: every (interval, path) cell.
    let log = &report.log;
    h.f64(log.interval_s());
    h.word(log.path_count() as u64);
    h.word(log.interval_count() as u64);
    for t in 0..log.interval_count() {
        for p in 0..log.path_count() {
            h.word(log.sent(t, PathId(p)));
            h.word(log.lost(t, PathId(p)));
        }
    }
    // Ground truth: every (interval, link, class) cell.
    let truth = &report.link_truth;
    h.word(truth.link_count() as u64);
    h.word(truth.class_count() as u64);
    h.word(truth.interval_count() as u64);
    for t in 0..truth.interval_count() {
        for l in 0..truth.link_count() {
            for c in 0..truth.class_count() {
                h.word(truth.offered_at(t, LinkId(l), c as u8));
                h.word(truth.dropped_at(t, LinkId(l), c as u8));
            }
        }
    }
    // Queue traces: every sample, f64 bit patterns included.
    h.word(report.queue_traces.len() as u64);
    for trace in &report.queue_traces {
        h.word(trace.times_s.len() as u64);
        for &t in &trace.times_s {
            h.f64(t);
        }
        for &b in &trace.bytes {
            h.word(b);
        }
    }
    h.0
}

/// Every scenario family in the library at identity-test durations — now
/// the shared [`identity_suite`] (the corpus round-trip gate runs over the
/// same population).
///
/// Rows 0–6 are the PR 3 set, pinned on the **pre-rewrite** emulator; rows
/// 7–13 cover the PR 4 additions (mixed-CC fleets, queue overrides, the
/// topology-B policer-rate sweep), pinned on the emulator that shipped
/// them — so heterogeneous traffic stays fingerprint-gated too.
fn library() -> Vec<Scenario> {
    identity_suite()
}

/// `(scenario index, seed index) -> fingerprint`. Scenario order matches
/// `library()`, seed order matches `SEEDS`; rows 0–6 were captured on the
/// pre-rewrite (PR 2) emulator and must never change.
const GOLDEN: [[u64; 3]; 14] = [
    [0x4075257e61dba9c9, 0xf57aea5e7bff61d5, 0x51739f6eb8d8822c],
    [0x03f646de65b6c71c, 0x26fe2473458c8545, 0x6cbace9da1cfb086],
    [0x67a3910a39924641, 0x4685ac7b786d4f16, 0x5564b1131dcd08b3],
    [0x7dc6c60496acb66f, 0xbab9d3f23d52824d, 0x8a0d968860ed09dc],
    [0xb449c5797eb514c1, 0x75d17f7d65f4c138, 0xe322c6f49d73d35d],
    [0x23b3f9a6b9ec4f3c, 0xc684fc5994e2976d, 0xad828cb9391948a8],
    [0xdaad1023d83cd49e, 0xc49dbabfa4b07339, 0x6a65096b8d297f28],
    [0xd275b0661417d584, 0x11e0cc1caaca6a00, 0x329d6fcb03b23a96],
    [0xc1e4ece911d7eac9, 0x9e47adcbbf12d22f, 0x5443d9c0ecb39624],
    [0x4f442c45cfebab5c, 0x34e9624d9e61b60c, 0x2e4def233c362dc2],
    [0xee42220663610134, 0x8c404c1434e814b6, 0x477b648be5837c49],
    [0x0bc28a32dd8e6663, 0x09d9701f7519bfb7, 0x208e5ce6b2c13d51],
    [0xeac4ff6d84fc3d61, 0xda1423c08ad46cda, 0x32d19d3a3144c6a6],
    [0x885d95caed232f72, 0x7c0e46bf2b753a67, 0x5c45bd721be38e07],
];

#[test]
fn sim_reports_match_pre_rewrite_golden_fingerprints() {
    let scenarios = library();
    let mut current = Vec::new();
    for s in &scenarios {
        let mut row = Vec::new();
        for &seed in &SEEDS {
            row.push(fingerprint(&s.with_seed(seed).compile().emulate()));
        }
        current.push(row);
    }
    if std::env::var("NNI_PRINT_FINGERPRINTS").is_ok() {
        println!("const GOLDEN: [[u64; 3]; {}] = [", scenarios.len());
        for row in &current {
            println!(
                "    [{}],",
                row.iter()
                    .map(|f| format!("{f:#018x}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        println!("];");
    }
    for (i, s) in scenarios.iter().enumerate() {
        for (j, &seed) in SEEDS.iter().enumerate() {
            assert_eq!(
                current[i][j], GOLDEN[i][j],
                "SimReport diverged from the pre-rewrite emulator: \
                 scenario `{}` seed {seed}",
                s.name
            );
        }
    }
}

/// Identity must also hold between two runs of the *same* build — a cheap
/// canary separating "rewrite changed behaviour" from "emulator is
/// nondeterministic" when the golden test fails.
#[test]
fn fingerprints_are_deterministic_within_build() {
    let s = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.3),
        duration_s: 5.0,
        ..ExperimentParams::default()
    });
    let a = fingerprint(&s.with_seed(9).compile().emulate());
    let b = fingerprint(&s.with_seed(9).compile().emulate());
    assert_eq!(a, b);
}
