//! Criterion bench: serial vs sharded regeneration of a reduced Table 2
//! sweep — the number the ROADMAP asks for ("run-sharding should cut
//! Figure 8/10 regeneration wall-clock by ~#cores") — plus the
//! measurement-cache payoff: a decision-threshold sweep through
//! `reinfer_sets` (one simulation per distinct scenario) against naively
//! re-simulating every member.
//!
//! The Table 2 workload is the full nine-set sweep at a short duration, so
//! one iteration runs 34 independent experiments. On an N-core machine the
//! `sharded(N)` row should land near `serial / N` (the acceptance target is
//! ≥2× on 4 cores); on a single core the two rows must match, which is also
//! worth seeing in CI output. The threshold-sweep pair quantifies the
//! O(sims × configs) → O(sims + configs) redesign: expect the cached row
//! well above 3× below the naive one.

use criterion::{criterion_group, criterion_main, Criterion};
use nni_bench::{table2_sets, ExperimentParams, Mechanism};
use nni_scenario::{
    reinfer_sets, run_sets, Executor, MeasurementCache, SerialExecutor, ShardedExecutor, SweepSet,
};
use std::time::Duration;

/// The reduced sweep: every Table 2 scenario at 3 simulated seconds.
fn sweep() -> Vec<nni_scenario::Experiment> {
    table2_sets(3.0, 42)
        .iter()
        .flat_map(|s| s.compile())
        .collect()
}

fn bench_executors(c: &mut Criterion) {
    let experiments = sweep();
    let mut g = c.benchmark_group("table2_sweep_3s");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function("serial", |b| {
        b.iter(|| SerialExecutor.execute(&experiments).len())
    });
    g.bench_function("sharded(2)", |b| {
        b.iter(|| ShardedExecutor::new(2).execute(&experiments).len())
    });
    let auto = ShardedExecutor::auto();
    g.bench_function(auto.describe(), |b| {
        b.iter(|| auto.execute(&experiments).len())
    });
    g.finish();
}

/// Five distinct bases × ten decision thresholds = 50 members, 5 distinct
/// measurements.
fn threshold_sets() -> Vec<SweepSet> {
    let thresholds = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.15, 0.20];
    let mk = |mechanism, seed| {
        nni_scenario::library::topology_a_scenario(ExperimentParams {
            mechanism,
            duration_s: 3.0,
            seed,
            ..ExperimentParams::default()
        })
    };
    [
        mk(Mechanism::Neutral, 1),
        mk(Mechanism::Policing(0.2), 1),
        mk(Mechanism::Policing(0.3), 2),
        mk(Mechanism::Shaping(0.3), 1),
        mk(Mechanism::Neutral, 2),
    ]
    .iter()
    .enumerate()
    .map(|(i, b)| SweepSet::decision_thresholds(format!("thr/{i}"), b, &thresholds))
    .collect()
}

fn bench_reinfer(c: &mut Criterion) {
    let sets = threshold_sets();
    let mut g = c.benchmark_group("threshold_sweep_5x10_3s");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    // Naive: every member re-simulates (50 simulations per iteration).
    g.bench_function("naive_resimulate", |b| {
        b.iter(|| run_sets(&sets, &SerialExecutor).len())
    });
    // Seam: 5 simulations + 50 inferences (fresh cache per iteration).
    g.bench_function("cached_reinfer", |b| {
        b.iter(|| {
            let cache = MeasurementCache::new();
            reinfer_sets(&sets, &SerialExecutor, &cache).len()
        })
    });
    // Warm cache: pure inference fan-out (zero simulations per iteration).
    let warm = MeasurementCache::new();
    reinfer_sets(&sets, &SerialExecutor, &warm);
    g.bench_function("warm_cache_reinfer", |b| {
        b.iter(|| reinfer_sets(&sets, &SerialExecutor, &warm).len())
    });
    g.finish();
}

criterion_group!(benches, bench_executors, bench_reinfer);
criterion_main!(benches);
