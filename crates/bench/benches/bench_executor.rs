//! Criterion bench: serial vs sharded regeneration of a reduced Table 2
//! sweep — the number the ROADMAP asks for ("run-sharding should cut
//! Figure 8/10 regeneration wall-clock by ~#cores").
//!
//! The workload is the full nine-set Table 2 sweep at a short duration, so
//! one iteration runs 34 independent experiments. On an N-core machine the
//! `sharded(N)` row should land near `serial / N` (the acceptance target is
//! ≥2× on 4 cores); on a single core the two rows must match, which is also
//! worth seeing in CI output.

use criterion::{criterion_group, criterion_main, Criterion};
use nni_bench::table2_sets;
use nni_scenario::{Executor, SerialExecutor, ShardedExecutor};
use std::time::Duration;

/// The reduced sweep: every Table 2 scenario at 3 simulated seconds.
fn sweep() -> Vec<nni_scenario::Experiment> {
    table2_sets(3.0, 42)
        .iter()
        .flat_map(|s| s.compile())
        .collect()
}

fn bench_executors(c: &mut Criterion) {
    let experiments = sweep();
    let mut g = c.benchmark_group("table2_sweep_3s");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function("serial", |b| {
        b.iter(|| SerialExecutor.execute(&experiments).len())
    });
    g.bench_function("sharded(2)", |b| {
        b.iter(|| ShardedExecutor::new(2).execute(&experiments).len())
    });
    let auto = ShardedExecutor::auto();
    g.bench_function(auto.describe(), |b| {
        b.iter(|| auto.execute(&experiments).len())
    });
    g.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
