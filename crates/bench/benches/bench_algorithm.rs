//! Criterion bench: Algorithm 1 end-to-end in exact mode (the inference half
//! of Figures 8 and 10), and slice enumeration scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nni_core::{
    enumerate_slices, identify, Classes, Config, EquivalentNetwork, ExactOracle, LinkPerf,
    NetworkPerf,
};
use nni_topology::library::{dumbbell, parking_lot, topology_b};

fn bench_slice_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate_slices");
    for segs in [4usize, 8, 16, 32] {
        let t = parking_lot(segs);
        g.bench_with_input(BenchmarkId::from_parameter(segs), &t, |b, t| {
            b.iter(|| enumerate_slices(&t.topology).len())
        });
    }
    g.finish();
}

fn bench_identify_topology_b(c: &mut Criterion) {
    let t = topology_b();
    let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
    let mut perf = NetworkPerf::congestion_free(&t.topology, 2);
    for &l in &t.nonneutral_links {
        perf = perf.with_link(l, LinkPerf::per_class(vec![0.001, 0.05]));
    }
    let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
    c.bench_function("identify/topology_b_exact", |b| {
        b.iter(|| identify(&t.topology, &oracle, Config::exact()))
    });
}

fn bench_identify_dumbbell_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("identify/dumbbell");
    for n in [4usize, 8, 16] {
        let t = dumbbell(n / 2, n / 2);
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let shared = t.nonneutral_links[0];
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(shared, LinkPerf::per_class(vec![0.0, 0.1]));
        let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
        g.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| identify(&t.topology, &oracle, Config::exact()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_slice_enumeration,
    bench_identify_topology_b,
    bench_identify_dumbbell_scaling
);
criterion_main!(benches);
