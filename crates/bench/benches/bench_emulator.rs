//! Criterion bench: emulator event throughput (the substrate cost of every
//! Figure 8 / 10 / 11 regeneration).

use criterion::{criterion_group, criterion_main, Criterion};
use nni_bench::{run_topology_a, ExperimentParams, Mechanism};
use nni_emu::{
    link_params, measured_routes, CcKind, RouteId, SimConfig, Simulator, SizeDist, TrafficSpec,
};
use nni_topology::library::topology_a;

fn bench_dumbbell_second(c: &mut Criterion) {
    // One simulated second of a loaded dumbbell: measures events/sec.
    c.bench_function("emulator/topology_a_1s", |b| {
        b.iter(|| {
            let paper = topology_a(0.05, 0.05);
            let g = &paper.topology;
            let cfg = SimConfig {
                duration_s: 1.0,
                warmup_s: 0.0,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(link_params(g, &[]), measured_routes(g), 4, 2, cfg);
            for p in 0..4usize {
                sim.add_traffic(TrafficSpec {
                    route: RouteId(p),
                    class: (p >= 2) as u8,
                    cc: CcKind::Cubic,
                    size: SizeDist::Fixed { bytes: 100_000_000 },
                    mean_gap_s: 10.0,
                    parallel: 4,
                });
            }
            sim.run().segments_sent
        })
    });
}

fn bench_full_experiment(c: &mut Criterion) {
    // A short end-to-end Figure 8 experiment (emulate + measure + infer).
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    g.bench_function("fig8_policing_10s", |b| {
        b.iter(|| {
            run_topology_a(ExperimentParams {
                mechanism: Mechanism::Policing(0.2),
                duration_s: 10.0,
                ..ExperimentParams::default()
            })
            .flagged_nonneutral
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dumbbell_second, bench_full_experiment);
criterion_main!(benches);
