//! Criterion bench: emulator event throughput (the substrate cost of every
//! Figure 8 / 10 / 11 regeneration).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nni_bench::{run_topology_a, ExperimentParams, Mechanism};
use nni_emu::{
    link_params, measured_routes, CalendarEventQueue, CcKind, Event, HeapEventQueue, RouteId,
    SimConfig, SimTime, Simulator, SizeDist, TrafficSpec,
};
use nni_topology::library::topology_a;

fn bench_dumbbell_second(c: &mut Criterion) {
    // One simulated second of a loaded dumbbell: measures events/sec.
    c.bench_function("emulator/topology_a_1s", |b| {
        b.iter(|| {
            let paper = topology_a(0.05, 0.05);
            let g = &paper.topology;
            let cfg = SimConfig {
                duration_s: 1.0,
                warmup_s: 0.0,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(link_params(g, &[]), measured_routes(g), 4, 2, cfg);
            for p in 0..4u32 {
                sim.add_traffic(TrafficSpec {
                    route: RouteId(p),
                    class: (p >= 2) as u8,
                    cc: CcKind::Cubic.into(),
                    size: SizeDist::Fixed { bytes: 100_000_000 },
                    mean_gap_s: 10.0,
                    parallel: 4,
                });
            }
            sim.run().segments_sent
        })
    });
}

fn bench_full_experiment(c: &mut Criterion) {
    // A short end-to-end Figure 8 experiment (emulate + measure + infer).
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    g.bench_function("fig8_policing_10s", |b| {
        b.iter(|| {
            run_topology_a(ExperimentParams {
                mechanism: Mechanism::Policing(0.2),
                duration_s: 10.0,
                ..ExperimentParams::default()
            })
            .flagged_nonneutral
        })
    });
    g.finish();
}

/// Synthetic event-queue churn mimicking the simulator's mix: most pushes
/// land within ~1 ms of `now` (tx completions, same-time arrivals), a tail
/// lands ~200 ms out (RTO timers), and pops interleave 1:1 with pushes.
fn queue_churn<Q>(
    mut push: impl FnMut(&mut Q, SimTime, Event),
    mut pop: impl FnMut(&mut Q) -> Option<(SimTime, Event)>,
    q: &mut Q,
) -> u64 {
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    // Preload a pending set comparable to a loaded dumbbell's.
    for i in 0..4096u32 {
        push(q, SimTime(rand() % 1_000_000), Event::FlowStart { slot: i });
    }
    let mut popped = 0u64;
    for _ in 0..200_000u32 {
        let (now, _) = pop(q).expect("queue stays loaded");
        popped += 1;
        let delta = if rand() % 16 == 0 {
            200_000_000 // an RTO-scale timer
        } else {
            rand() % 1_000_000 // tx/arrival scale
        };
        push(q, SimTime(now.0 + delta), Event::Sample);
    }
    popped
}

fn bench_event_queues(c: &mut Criterion) {
    // Heap vs calendar on the same churn: the numbers that decided the
    // `EventQueue` default (see `nni_emu::event` docs).
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("heap_churn_200k", |b| {
        b.iter(|| {
            let mut q = HeapEventQueue::new();
            black_box(queue_churn(|q, t, e| q.push(t, e), |q| q.pop(), &mut q))
        })
    });
    g.bench_function("calendar_churn_200k", |b| {
        b.iter(|| {
            let mut q = CalendarEventQueue::new();
            black_box(queue_churn(|q, t, e| q.push(t, e), |q| q.pop(), &mut q))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dumbbell_second,
    bench_full_experiment,
    bench_event_queues
);
criterion_main!(benches);
