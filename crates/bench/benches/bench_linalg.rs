//! Criterion bench: the linear-algebra kernel that decides slice-system
//! solvability (supports every table/figure regeneration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nni_linalg::{analyze, default_tolerance, lstsq, rank, Matrix};

fn routing_like_matrix(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            if (i * 31 + j * 17) % 3 == 0 {
                m[(i, j)] = 1.0;
            }
        }
    }
    m
}

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank");
    for n in [8usize, 16, 32, 64] {
        let m = routing_like_matrix(2 * n, n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| rank(m, default_tolerance(m)))
        });
    }
    g.finish();
}

fn bench_consistency(c: &mut Criterion) {
    let mut g = c.benchmark_group("consistency");
    for n in [8usize, 16, 32] {
        let m = routing_like_matrix(2 * n, n);
        let y: Vec<f64> = (0..2 * n).map(|i| (i % 5) as f64 * 0.1).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(m, y), |b, (m, y)| {
            b.iter(|| analyze(m, y, 1e-9).is_consistent())
        });
    }
    g.finish();
}

fn bench_lstsq(c: &mut Criterion) {
    let mut g = c.benchmark_group("lstsq");
    for n in [8usize, 16, 32] {
        let m = routing_like_matrix(2 * n, n);
        let y: Vec<f64> = (0..2 * n).map(|i| (i % 7) as f64 * 0.1).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(m, y), |b, (m, y)| {
            b.iter(|| lstsq(m, y))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rank, bench_consistency, bench_lstsq);
criterion_main!(benches);
