//! Criterion bench: Algorithm 2 (normalization + pathset performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nni_measure::{group_indicators, MeasurementLog, NormalizeConfig};
use nni_topology::PathId;

fn synthetic_log(paths: usize, intervals: usize) -> MeasurementLog {
    let mut log = MeasurementLog::new(paths, 0.1);
    for t in 0..intervals {
        for p in 0..paths {
            log.record_sent(t, PathId(p), 500 + (t * 13 + p * 7) as u64 % 300);
            if (t + p) % 9 == 0 {
                log.record_lost(t, PathId(p), 12);
            }
        }
    }
    log
}

fn bench_normalization(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm2/group_indicators");
    for intervals in [600usize, 1200, 6000] {
        let log = synthetic_log(4, intervals);
        let group: Vec<PathId> = (0..4).map(PathId).collect();
        g.bench_with_input(BenchmarkId::from_parameter(intervals), &log, |b, log| {
            b.iter(|| group_indicators(log, &group, NormalizeConfig::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_normalization);
criterion_main!(benches);
