//! Exit-code contract of `exp_corpus replay --verify`: a corpus whose
//! entries all decode exits 0; any codec failure — whether it surfaces at
//! listing time (corrupt provenance prefix) or at acquire time (corrupt
//! payload/checksum) — exits exactly 1, never a panic's 101.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use nni_measure::{Corpus, MeasurementLog, MeasurementSet, Provenance};
use nni_topology::{PathId, TopologyBuilder};

fn exp_corpus(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_exp_corpus"))
        .args(args)
        .output()
        .expect("exp_corpus runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nni-exp-corpus-cli-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tiny_set() -> MeasurementSet {
    let mut b = TopologyBuilder::new();
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    let l0 = b.link("l0", h0, h1).unwrap();
    b.path("p0", vec![l0]).unwrap();
    let mut log = MeasurementLog::new(1, 0.1);
    log.record_sent(0, PathId(0), 12);
    MeasurementSet {
        topology: b.build(),
        classes: vec![vec![PathId(0)]],
        log,
        provenance: Provenance {
            scenario: "cli test".into(),
            scenario_fingerprint: 0xABCD,
            seed: 7,
            build: "test".into(),
        },
    }
}

#[test]
fn healthy_corpus_verifies_with_exit_zero() {
    let dir = temp_dir("healthy");
    let corpus = Corpus::open(&dir).expect("corpus opens");
    corpus.store(&tiny_set()).expect("store");
    let out = exp_corpus(&["replay", "--dir", dir.to_str().unwrap(), "--verify"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("checksums good"), "got: {stdout}");
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupt_payload_fails_verify_with_exit_one() {
    let dir = temp_dir("payload");
    let corpus = Corpus::open(&dir).expect("corpus opens");
    let path = corpus.store(&tiny_set()).expect("store");
    // Truncate past the provenance prefix: listing still works, acquiring
    // hits the checksum/EOF failure.
    let bytes = fs::read(&path).expect("read entry");
    fs::write(&path, &bytes[..bytes.len() - 4]).expect("truncate entry");

    let out = exp_corpus(&["replay", "--dir", dir.to_str().unwrap(), "--verify"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a decode failure must exit 1, not panic; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("FAILED"));
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupt_prefix_fails_listing_with_exit_one() {
    let dir = temp_dir("prefix");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("garbage.nniset"), b"not a measurement set").expect("write");

    let out = exp_corpus(&["replay", "--dir", dir.to_str().unwrap(), "--verify"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a listing failure must exit 1, not 101; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("FAILED to list corpus"));
    fs::remove_dir_all(&dir).expect("cleanup");
}
