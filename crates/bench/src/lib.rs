//! # nni-bench
//!
//! Experiment regenerators for every table and figure of the paper's
//! evaluation (§6), plus shared harness code for the Criterion benches.
//! Everything runs on the `nni-scenario` API: the sweeps here are
//! [`SweepSet`]s, and any
//! [`Executor`](nni_scenario::Executor) — serial or sharded — runs them
//! (whole sweeps batch through [`nni_scenario::run_sets`] in one call).
//!
//! Binaries (`cargo run -p nni-bench --release --bin <name>`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `exp_fig8` | Table 2 + Figure 8(a–i): nine experiment sets on topology A |
//! | `exp_fig10` | Table 3 + Figure 10(a, b) + FN/FP/granularity on topology B |
//! | `exp_fig11` | Figure 11: queue occupancy of neutral `l13` vs policing `l14` |
//! | `exp_theory` | Figures 1–6: observability / identifiability worked examples |
//! | `exp_robustness` | §6.5 sweep: loss thresholds × measurement intervals |
//! | `exp_baselines` | Ablation: Algorithm 1 vs boolean/loss tomography vs Glasnost vs NetPolice |
//! | `exp_sweeps` | Beyond-Table-2 sweep sets: topology-B policer-rate sweep, CC-fleet mix, mixed-CC neutral seeds, a cached decision-threshold re-inference sweep |
//! | `exp_corpus` | Record / replay / re-infer on-disk measurement corpora (the `MeasurementSet` seam as a CLI) |
//!
//! The sweep binaries accept `--executor serial|sharded` and `--workers N`;
//! sharded runs are guaranteed to produce results identical to serial runs,
//! seed for seed (see `nni_scenario::executor`).

pub mod cli;
pub mod expsets;
pub mod table;
pub mod topob;

pub use cli::{ExpArgs, ExpCaps};
pub use expsets::{run_topology_a, table2_sets};
// Re-exported so harness code keeps one import path for the experiment
// surface; the types live in `nni-scenario`.
pub use nni_scenario::library::{
    topology_a_classes, topology_a_paths, ExperimentParams, Mechanism,
};
pub use nni_scenario::{ExperimentOutcome, SweepSet};
pub use table::Table;
pub use topob::{run_topology_b, TopologyBOutcome, TopologyBParams};
