//! # nni-bench
//!
//! Experiment regenerators for every table and figure of the paper's
//! evaluation (§6), plus shared harness code for the Criterion benches.
//!
//! Binaries (`cargo run -p nni-bench --release --bin <name>`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `exp_fig8` | Table 2 + Figure 8(a–i): nine experiment sets on topology A |
//! | `exp_fig10` | Table 3 + Figure 10(a, b) + FN/FP/granularity on topology B |
//! | `exp_fig11` | Figure 11: queue occupancy of neutral `l13` vs policing `l14` |
//! | `exp_theory` | Figures 1–6: observability / identifiability worked examples |
//! | `exp_robustness` | §6.5 sweep: loss thresholds × measurement intervals |
//! | `exp_baselines` | Ablation: Algorithm 1 vs boolean/loss tomography vs Glasnost |

pub mod expsets;
pub mod table;
pub mod topob;

pub use expsets::{
    run_topology_a, table2_sets, ExperimentOutcome, ExperimentParams, ExperimentSet, Mechanism,
};
pub use table::Table;
pub use topob::{run_topology_b, TopologyBOutcome, TopologyBParams};
