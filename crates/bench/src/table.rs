//! Minimal fixed-width text tables for the experiment binaries.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            out.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long header"]);
        t.row(vec!["xxxxx", "1"]);
        t.row(vec!["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('1'));
    }
}
