//! The topology B experiment (§6.4, Figures 9–11, Table 3).

use nni_core::{evaluate, identify, Config, InferenceResult, Quality};
use nni_emu::{
    background_route, link_params, long_flow, measured_routes, policer_at_fraction, short_flow_mix,
    CcKind, QueueTrace, RouteId, SimConfig, SimReport, Simulator, SizeDist, TrafficSpec,
};
use nni_measure::{MeasuredObservations, NormalizeConfig};
use nni_topology::library::{topology_b, PaperTopology};
use nni_topology::{LinkId, PathId};

/// Parameters of the topology B experiment.
#[derive(Debug, Clone, Copy)]
pub struct TopologyBParams {
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Policing rate as a fraction of link capacity (l5, l14, l20).
    pub policing_fraction: f64,
    /// Loss threshold.
    pub loss_threshold: f64,
    /// Measurement interval (seconds).
    pub interval_s: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TopologyBParams {
    fn default() -> Self {
        TopologyBParams {
            duration_s: 300.0,
            policing_fraction: 0.2,
            loss_threshold: 0.01,
            interval_s: 0.1,
            seed: 7,
        }
    }
}

/// Per-pair estimate annotated with the pair's class membership (the basis
/// of Figure 10(b)'s paired boxplots).
#[derive(Debug, Clone)]
pub struct TaggedEstimate {
    /// The pair.
    pub pair: (PathId, PathId),
    /// Estimate of `x_τ`.
    pub estimate: f64,
    /// `Some(n)` when both paths are in class `n`; `None` for mixed pairs
    /// (which by Equation 20 estimate the top class's number).
    pub pure_class: Option<usize>,
}

/// Outcome of the topology B experiment.
pub struct TopologyBOutcome {
    /// The topology (for link naming in reports).
    pub paper: PaperTopology,
    /// Ground-truth per-link per-class congestion probabilities (Fig 10a).
    pub link_congestion: Vec<[f64; 2]>,
    /// Inference result.
    pub inference: InferenceResult,
    /// Per-slice estimates tagged by pair class (Fig 10b).
    pub tagged_estimates: Vec<(nni_topology::LinkSeq, Vec<TaggedEstimate>, bool)>,
    /// Quality metrics vs the ground-truth policers.
    pub quality: Quality,
    /// Queue traces of `l13` (neutral) and `l14` (policer) — Figure 11.
    pub trace_l13: QueueTrace,
    /// See `trace_l13`.
    pub trace_l14: QueueTrace,
    /// Raw simulation report.
    pub report: SimReport,
}

/// Runs the topology B experiment end to end.
pub fn run_topology_b(p: TopologyBParams) -> TopologyBOutcome {
    let paper = topology_b();
    let g = &paper.topology;

    // Policers on l5, l14, l20 targeting the long-flow class (label 1).
    // Bursts differ per device (as they would across real vendors), which
    // also desynchronises the policers' token cycles — identically
    // configured policers otherwise lock their loss episodes together and
    // violate the link-independence assumption (§2.2, assumption #2).
    let bursts = [0.025, 0.03, 0.035];
    let mechanisms: Vec<_> = paper
        .nonneutral_links
        .iter()
        .zip(bursts)
        .map(|(&l, burst)| policer_at_fraction(g, l, 1, p.policing_fraction, burst))
        .collect();

    let cfg = SimConfig {
        duration_s: p.duration_s,
        interval_s: p.interval_s,
        seed: p.seed,
        ..SimConfig::default()
    };

    // Routes: the 15 measured paths plus white-host background routes
    // (unmeasured, Table 3's "mix of short and long flows").
    let mut routes = measured_routes(g);
    let ln = |name: &str| g.link_by_name(name).expect("known link");
    let bg_routes = [
        vec![ln("l21"), ln("l13"), ln("l17")], // drives neutral l13 near capacity
        vec![ln("l21"), ln("l6"), ln("l15"), ln("l16")],
        vec![ln("l23"), ln("l8"), ln("l11"), ln("l19")],
    ];
    let mut bg_ids = Vec::new();
    for r in bg_routes {
        bg_ids.push(RouteId(routes.len()));
        routes.push(background_route(r));
    }

    let mut sim = Simulator::new(link_params(g, &mechanisms), routes, g.path_count(), 2, cfg);

    // Table 3 traffic. Dark gray (class c1): 1 Mb + 10 Mb + 40 Mb parallel
    // flows; light gray (class c2): one 10 Gb flow; white: both mixes.
    for &path in &paper.classes[0] {
        for spec in short_flow_mix(RouteId(path.index()), 0, CcKind::Cubic) {
            sim.add_traffic(spec);
        }
    }
    for &path in &paper.classes[1] {
        sim.add_traffic(long_flow(RouteId(path.index()), 1, CcKind::Cubic));
        // Long-flow hosts also cycle medium transfers (the BitTorrent-like
        // churn of §1's motivation): each restart slow-starts into the
        // policers, producing the episodic loss bursts that make
        // co-occurrence across same-class paths observable.
        sim.add_traffic(TrafficSpec {
            route: RouteId(path.index()),
            class: 1,
            cc: CcKind::Cubic,
            size: SizeDist::ParetoMean {
                mean_bytes: 40e6 / 8.0,
                shape: 1.5,
            },
            mean_gap_s: 2.0,
            parallel: 3,
        });
    }
    for &bg in &bg_ids {
        for spec in short_flow_mix(bg, 0, CcKind::Cubic) {
            sim.add_traffic(spec);
        }
        sim.add_traffic(long_flow(bg, 1, CcKind::Cubic));
    }

    let report = sim.run();

    // Figure 10(a): ground-truth congestion probability per link per class.
    let link_congestion: Vec<[f64; 2]> = g
        .link_ids()
        .map(|l| {
            [
                report
                    .link_truth
                    .congestion_probability(l, 0, p.loss_threshold),
                report
                    .link_truth
                    .congestion_probability(l, 1, p.loss_threshold),
            ]
        })
        .collect();

    // Inference.
    let obs = MeasuredObservations::new(
        &report.log,
        NormalizeConfig {
            loss_threshold: p.loss_threshold,
            seed: p.seed ^ 0xBEEF,
        },
    );
    let inference = identify(g, &obs, Config::clustered());

    // Figure 10(b): tag each slice's per-pair estimates by pair class.
    let c1 = &paper.classes[0];
    let c2 = &paper.classes[1];
    let tagged_estimates: Vec<_> = inference
        .verdicts
        .iter()
        .map(|v| {
            let tags: Vec<TaggedEstimate> = v
                .estimates
                .iter()
                .map(|e| {
                    let (a, b) = e.pair;
                    let pure_class = if c1.contains(&a) && c1.contains(&b) {
                        Some(0)
                    } else if c2.contains(&a) && c2.contains(&b) {
                        Some(1)
                    } else {
                        None
                    };
                    TaggedEstimate {
                        pair: e.pair,
                        estimate: e.estimate,
                        pure_class,
                    }
                })
                .collect();
            (v.tau.clone(), tags, v.nonneutral)
        })
        .collect();

    let quality = evaluate(g, &inference.nonneutral, &paper.nonneutral_links);

    let trace_of = |l: LinkId| report.queue_traces[l.index()].clone();
    let (l13, l14) = (ln("l13"), ln("l14"));

    TopologyBOutcome {
        link_congestion,
        tagged_estimates,
        quality,
        trace_l13: trace_of(l13),
        trace_l14: trace_of(l14),
        inference,
        report,
        paper,
    }
}
