//! The topology B experiment (§6.4, Figures 9–11, Table 3), on the
//! [`Scenario`] API.
//!
//! The network wiring, traffic, and policer placement live in
//! [`nni_scenario::library::topology_b_scenario`]; this module derives the
//! figure-specific views (per-link per-class congestion, class-tagged pair
//! estimates, queue traces) from the generic [`ExperimentOutcome`].

use nni_core::{InferenceResult, Quality};
use nni_emu::QueueTrace;
use nni_scenario::library::topology_b_scenario;
pub use nni_scenario::library::TopologyBParams;
use nni_scenario::{ExperimentOutcome, Scenario};
use nni_topology::library::PaperTopology;
use nni_topology::PathId;

/// Per-pair estimate annotated with the pair's class membership (the basis
/// of Figure 10(b)'s paired boxplots).
#[derive(Debug, Clone)]
pub struct TaggedEstimate {
    /// The pair.
    pub pair: (PathId, PathId),
    /// Estimate of `x_τ`.
    pub estimate: f64,
    /// `Some(n)` when both paths are in class `n`; `None` for mixed pairs
    /// (which by Equation 20 estimate the top class's number).
    pub pure_class: Option<usize>,
}

/// Outcome of the topology B experiment.
pub struct TopologyBOutcome {
    /// The topology (for link naming in reports).
    pub paper: PaperTopology,
    /// Ground-truth per-link per-class congestion probabilities (Fig 10a).
    pub link_congestion: Vec<[f64; 2]>,
    /// Inference result.
    pub inference: InferenceResult,
    /// Per-slice estimates tagged by pair class (Fig 10b).
    pub tagged_estimates: Vec<(nni_topology::LinkSeq, Vec<TaggedEstimate>, bool)>,
    /// Quality metrics vs the ground-truth policers.
    pub quality: Quality,
    /// Queue traces of `l13` (neutral) and `l14` (policer) — Figure 11.
    pub trace_l13: QueueTrace,
    /// See `trace_l13`.
    pub trace_l14: QueueTrace,
    /// Raw simulation report.
    pub report: nni_emu::SimReport,
}

/// Runs the topology B experiment end to end.
pub fn run_topology_b(p: TopologyBParams) -> TopologyBOutcome {
    let scenario = topology_b_scenario(p);
    let outcome = scenario.run();
    derive_outcome(&scenario, outcome)
}

/// Derives the Figure 10/11 views from a generic topology-B outcome. Works
/// for any scenario over the topology-B graph (e.g. the library's
/// dual-policer variant).
pub fn derive_outcome(scenario: &Scenario, out: ExperimentOutcome) -> TopologyBOutcome {
    let paper = PaperTopology {
        topology: scenario.topology.clone(),
        classes: scenario.classes.clone(),
        nonneutral_links: scenario.expectation.nonneutral_links.clone(),
    };
    let g = &paper.topology;
    let thr = scenario.measurement.loss_threshold;

    // Figure 10(a): ground-truth congestion probability per link per class.
    let link_congestion: Vec<[f64; 2]> = g
        .link_ids()
        .map(|l| {
            [
                out.report.link_truth.congestion_probability(l, 0, thr),
                out.report.link_truth.congestion_probability(l, 1, thr),
            ]
        })
        .collect();

    // Figure 10(b): tag each slice's per-pair estimates by pair class.
    let c1 = &paper.classes[0];
    let c2 = &paper.classes[1];
    let tagged_estimates: Vec<_> = out
        .inference
        .verdicts
        .iter()
        .map(|v| {
            let tags: Vec<TaggedEstimate> = v
                .estimates
                .iter()
                .map(|e| {
                    let (a, b) = e.pair;
                    let pure_class = if c1.contains(&a) && c1.contains(&b) {
                        Some(0)
                    } else if c2.contains(&a) && c2.contains(&b) {
                        Some(1)
                    } else {
                        None
                    };
                    TaggedEstimate {
                        pair: e.pair,
                        estimate: e.estimate,
                        pure_class,
                    }
                })
                .collect();
            (v.tau.clone(), tags, v.nonneutral)
        })
        .collect();

    let trace_of = |name: &str| out.report.queue_traces[paper.link_named(name).index()].clone();
    TopologyBOutcome {
        link_congestion,
        tagged_estimates,
        quality: out.quality,
        trace_l13: trace_of("l13"),
        trace_l14: trace_of("l14"),
        inference: out.inference,
        report: out.report,
        paper,
    }
}
