//! Table 2: the nine experiment sets on topology A, and the runner that
//! executes one experiment end-to-end (emulate → measure → infer).

use nni_core::{identify, Classes, Config, InferenceResult};
use nni_emu::{
    link_params, measured_routes, policer_at_fraction, shaper_at_fraction, CcKind, Differentiation,
    RouteId, SimConfig, SimReport, Simulator, SizeDist, TrafficSpec,
};
use nni_measure::{MeasuredObservations, NormalizeConfig};
use nni_topology::library::{topology_a, PaperTopology};
use nni_topology::PathId;

/// What the shared link does (Table 2's "Link l5 behavior").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// Plain FIFO.
    Neutral,
    /// Policing class 2 at the given fraction of capacity.
    Policing(f64),
    /// Shaping class 2 at the fraction, class 1 at one minus it.
    Shaping(f64),
}

/// Parameters of one topology-A experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Shared-link behaviour.
    pub mechanism: Mechanism,
    /// Mean flow size of class-1 paths (bits).
    pub flow_size_c1_bits: f64,
    /// Mean flow size of class-2 paths (bits).
    pub flow_size_c2_bits: f64,
    /// Propagation RTT of class-1 paths (seconds).
    pub rtt_c1_s: f64,
    /// Propagation RTT of class-2 paths (seconds).
    pub rtt_c2_s: f64,
    /// Congestion control of class-1 paths.
    pub cc_c1: CcKind,
    /// Congestion control of class-2 paths.
    pub cc_c2: CcKind,
    /// Parallel flows per path.
    pub flows_per_path: usize,
    /// Mean inter-flow gap (seconds).
    pub mean_gap_s: f64,
    /// Simulated duration (seconds).
    pub duration_s: f64,
    /// Measurement interval (seconds).
    pub interval_s: f64,
    /// Loss threshold.
    pub loss_threshold: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    /// Table 1 defaults (durations shortened per DESIGN.md; `--duration`
    /// restores the paper's 600 s).
    fn default() -> Self {
        ExperimentParams {
            mechanism: Mechanism::Neutral,
            flow_size_c1_bits: 10e6,
            flow_size_c2_bits: 10e6,
            rtt_c1_s: 0.05,
            rtt_c2_s: 0.05,
            cc_c1: CcKind::Cubic,
            cc_c2: CcKind::Cubic,
            flows_per_path: 20,
            mean_gap_s: 10.0,
            duration_s: 120.0,
            interval_s: 0.1,
            loss_threshold: 0.01,
            seed: 42,
        }
    }
}

/// Outcome of one experiment.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// Per-path congestion probability (Figure 8's bars), path order p1..p4.
    pub path_congestion: Vec<f64>,
    /// Algorithm verdict: did it find any non-neutral link sequence?
    pub flagged_nonneutral: bool,
    /// The full inference result.
    pub inference: InferenceResult,
    /// Whether the verdict matches the mechanism (ground truth).
    pub correct: bool,
    /// Raw simulation report.
    pub report: SimReport,
}

/// Runs one topology-A experiment end to end.
pub fn run_topology_a(p: ExperimentParams) -> ExperimentOutcome {
    let paper: PaperTopology = topology_a(p.rtt_c1_s, p.rtt_c2_s);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").expect("topology A has l5");

    let mechanisms: Vec<(nni_topology::LinkId, Differentiation)> = match p.mechanism {
        Mechanism::Neutral => Vec::new(),
        Mechanism::Policing(frac) => vec![policer_at_fraction(g, l5, 1, frac, 0.01)],
        Mechanism::Shaping(frac) => vec![shaper_at_fraction(g, l5, frac)],
    };

    let cfg = SimConfig {
        duration_s: p.duration_s,
        interval_s: p.interval_s,
        seed: p.seed,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        link_params(g, &mechanisms),
        measured_routes(g),
        g.path_count(),
        2,
        cfg,
    );
    for path in g.path_ids() {
        let is_c2 = paper.classes[1].contains(&path);
        let (bits, cc) = if is_c2 {
            (p.flow_size_c2_bits, p.cc_c2)
        } else {
            (p.flow_size_c1_bits, p.cc_c1)
        };
        sim.add_traffic(TrafficSpec {
            route: RouteId(path.index()),
            class: if is_c2 { 1 } else { 0 },
            cc,
            size: SizeDist::ParetoMean {
                mean_bytes: bits / 8.0,
                shape: 1.5,
            },
            mean_gap_s: p.mean_gap_s,
            parallel: p.flows_per_path,
        });
    }
    let report = sim.run();

    let path_congestion: Vec<f64> = g
        .path_ids()
        .map(|path| report.log.congestion_probability(path, p.loss_threshold))
        .collect();

    let obs = MeasuredObservations::new(
        &report.log,
        NormalizeConfig {
            loss_threshold: p.loss_threshold,
            seed: p.seed ^ 0xDEAD,
        },
    );
    let inference = identify(g, &obs, Config::clustered());
    let flagged = inference.network_is_nonneutral();

    // Ground truth: the network differentiates unless neutral — with the one
    // §6.3 exception: a 50/50 shaper throttles both classes identically and
    // is behaviourally neutral.
    let truly_nonneutral = match p.mechanism {
        Mechanism::Neutral => false,
        Mechanism::Shaping(frac) if (frac - 0.5).abs() < 1e-9 => false,
        _ => true,
    };

    ExperimentOutcome {
        path_congestion,
        flagged_nonneutral: flagged,
        correct: flagged == truly_nonneutral,
        inference,
        report,
    }
}

/// One experiment set of Table 2: a name and the experiments it sweeps.
pub struct ExperimentSet {
    /// Set number (1–9) and description.
    pub name: String,
    /// The x-axis label of the corresponding Figure 8 panel.
    pub axis: String,
    /// (x-axis tick label, parameters) per experiment.
    pub experiments: Vec<(String, ExperimentParams)>,
}

/// Builds all nine experiment sets of Table 2, scaled to `duration_s` with
/// the given base seed.
pub fn table2_sets(duration_s: f64, seed: u64) -> Vec<ExperimentSet> {
    // Per-set parallel-flow counts (DESIGN.md substitution: the paper's
    // exact load levels are unrecoverable; each mechanism needs its
    // observable regime). Sets 1-3 and 7-8 need high aggregation (70
    // flows/path, a Table 1 value); the policing sets work at 20; the
    // shaping-rate sweep needs per-class load between the 40% and 50%
    // lane rates (24 flows/path).
    let base = ExperimentParams {
        duration_s,
        seed,
        ..ExperimentParams::default()
    };
    let heavy = ExperimentParams {
        flows_per_path: 70,
        ..base
    };
    let policing_load = ExperimentParams {
        flows_per_path: 20,
        ..base
    };
    let shaping_sweep_load = ExperimentParams {
        flows_per_path: 24,
        ..base
    };
    let mb = 1e6;
    let sizes = [1.0 * mb, 10.0 * mb, 40.0 * mb, 10_000.0 * mb];
    let size_names = ["1", "10", "40", "10000"];
    let rtts = [0.05, 0.08, 0.12, 0.2];
    let rtt_names = ["50", "80", "120", "200"];
    let rates = [0.5, 0.4, 0.3, 0.2];
    let rate_names = ["50", "40", "30", "20"];

    let mut sets = Vec::new();

    // Set 1: neutral, class-1 flows 1 Mb, class-2 flow size varies.
    sets.push(ExperimentSet {
        name: "set1 neutral: vary class-2 mean flow size".into(),
        axis: "Mean flow size for class 2 [Mb]".into(),
        experiments: sizes
            .iter()
            .zip(size_names)
            .map(|(&s, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        flow_size_c1_bits: mb,
                        flow_size_c2_bits: s,
                        ..heavy
                    },
                )
            })
            .collect(),
    });

    // Set 2: neutral, class-2 RTT varies.
    sets.push(ExperimentSet {
        name: "set2 neutral: vary class-2 RTT".into(),
        axis: "RTT for class 2 [ms]".into(),
        experiments: rtts
            .iter()
            .zip(rtt_names)
            .map(|(&r, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        rtt_c1_s: 0.05,
                        rtt_c2_s: r,
                        ..heavy
                    },
                )
            })
            .collect(),
    });

    // Set 3: neutral, class-2 congestion control varies.
    sets.push(ExperimentSet {
        name: "set3 neutral: vary class-2 congestion control".into(),
        axis: "TCP congestion control alg. for class 2".into(),
        experiments: vec![
            (
                "CUBIC/CUBIC".into(),
                ExperimentParams {
                    cc_c1: CcKind::Cubic,
                    cc_c2: CcKind::Cubic,
                    ..heavy
                },
            ),
            (
                "CUBIC/NewReno".into(),
                ExperimentParams {
                    cc_c1: CcKind::Cubic,
                    cc_c2: CcKind::NewReno,
                    ..heavy
                },
            ),
        ],
    });

    // Sets 4–6: policing.
    sets.push(ExperimentSet {
        name: "set4 policing: vary mean flow size (both classes)".into(),
        axis: "Mean flow size [Mb]".into(),
        experiments: sizes
            .iter()
            .zip(size_names)
            .map(|(&s, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Policing(0.2),
                        flow_size_c1_bits: s,
                        flow_size_c2_bits: s,
                        ..policing_load
                    },
                )
            })
            .collect(),
    });
    sets.push(ExperimentSet {
        name: "set5 policing: vary RTT (both classes)".into(),
        axis: "RTT [ms]".into(),
        experiments: rtts
            .iter()
            .zip(rtt_names)
            .map(|(&r, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Policing(0.2),
                        rtt_c1_s: r,
                        rtt_c2_s: r,
                        ..policing_load
                    },
                )
            })
            .collect(),
    });
    sets.push(ExperimentSet {
        name: "set6 policing: vary policing rate".into(),
        axis: "Policing rate [%]".into(),
        experiments: rates
            .iter()
            .zip(rate_names)
            .map(|(&f, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Policing(f),
                        ..policing_load
                    },
                )
            })
            .collect(),
    });

    // Sets 7–9: shaping.
    sets.push(ExperimentSet {
        name: "set7 shaping: vary mean flow size (both classes)".into(),
        axis: "Mean flow size [Mb]".into(),
        experiments: sizes
            .iter()
            .zip(size_names)
            .map(|(&s, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Shaping(0.2),
                        flow_size_c1_bits: s,
                        flow_size_c2_bits: s,
                        // 1 Mb flows only press a 20 Mb/s shaper lane at
                        // very high aggregation (DESIGN.md calibration).
                        flows_per_path: if s <= 1.5 * mb { 140 } else { 70 },
                        ..heavy
                    },
                )
            })
            .collect(),
    });
    sets.push(ExperimentSet {
        name: "set8 shaping: vary RTT (both classes)".into(),
        axis: "RTT [ms]".into(),
        experiments: rtts
            .iter()
            .zip(rtt_names)
            .map(|(&r, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Shaping(0.2),
                        rtt_c1_s: r,
                        rtt_c2_s: r,
                        ..heavy
                    },
                )
            })
            .collect(),
    });
    sets.push(ExperimentSet {
        name: "set9 shaping: vary shaping rate".into(),
        axis: "Shaping rate [%]".into(),
        experiments: rates
            .iter()
            .zip(rate_names)
            .map(|(&f, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Shaping(f),
                        ..shaping_sweep_load
                    },
                )
            })
            .collect(),
    });

    sets
}

/// Ground-truth classes of topology A as a [`Classes`] value (for reporting).
pub fn topology_a_classes(paper: &PaperTopology) -> Classes {
    Classes::new(&paper.topology, paper.classes.clone()).expect("valid partition")
}

/// The PathIds of topology A in class order (p1, p2 | p3, p4).
pub fn topology_a_paths() -> [PathId; 4] {
    [PathId(0), PathId(1), PathId(2), PathId(3)]
}
