//! Table 2: the nine experiment sets on topology A, expressed as
//! [`SweepSet`]s over the `nni-scenario` API.
//!
//! Each set is one [`SweepSet`]; the per-experiment glue (topology wiring,
//! traffic placement, mechanism placement, ground truth) lives in
//! [`nni_scenario::library::topology_a_scenario`]. Run one set with
//! [`SweepSet::run`], or the whole Table 2 as a single executor batch with
//! [`nni_scenario::run_sets`].

use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};
use nni_scenario::{ExperimentOutcome, SweepSet};

/// Runs one topology-A experiment end to end (compile + serial run).
pub fn run_topology_a(p: ExperimentParams) -> ExperimentOutcome {
    topology_a_scenario(p).run()
}

fn set(
    name: &str,
    axis: &str,
    experiments: impl IntoIterator<Item = (String, ExperimentParams)>,
) -> SweepSet {
    SweepSet::from_points(
        name,
        axis,
        experiments
            .into_iter()
            .map(|(tick, p)| (tick, topology_a_scenario(p))),
    )
}

/// Builds all nine experiment sets of Table 2, scaled to `duration_s` with
/// the given base seed.
pub fn table2_sets(duration_s: f64, seed: u64) -> Vec<SweepSet> {
    // Per-set parallel-flow counts (DESIGN.md substitution: the paper's
    // exact load levels are unrecoverable; each mechanism needs its
    // observable regime). Sets 1-3 and 7-8 need high aggregation (70
    // flows/path, a Table 1 value); the policing sets work at 20; the
    // shaping-rate sweep needs per-class load between the 40% and 50%
    // lane rates (24 flows/path).
    let base = ExperimentParams {
        duration_s,
        seed,
        ..ExperimentParams::default()
    };
    let heavy = ExperimentParams {
        flows_per_path: 70,
        ..base
    };
    let policing_load = ExperimentParams {
        flows_per_path: 20,
        ..base
    };
    let shaping_sweep_load = ExperimentParams {
        flows_per_path: 24,
        ..base
    };
    let mb = 1e6;
    let sizes = [1.0 * mb, 10.0 * mb, 40.0 * mb, 10_000.0 * mb];
    let size_names = ["1", "10", "40", "10000"];
    let rtts = [0.05, 0.08, 0.12, 0.2];
    let rtt_names = ["50", "80", "120", "200"];
    let rates = [0.5, 0.4, 0.3, 0.2];
    let rate_names = ["50", "40", "30", "20"];

    vec![
        // Set 1: neutral, class-1 flows 1 Mb, class-2 flow size varies.
        set(
            "set1 neutral: vary class-2 mean flow size",
            "Mean flow size for class 2 [Mb]",
            sizes.iter().zip(size_names).map(|(&s, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        flow_size_c1_bits: mb,
                        flow_size_c2_bits: s,
                        ..heavy
                    },
                )
            }),
        ),
        // Set 2: neutral, class-2 RTT varies.
        set(
            "set2 neutral: vary class-2 RTT",
            "RTT for class 2 [ms]",
            rtts.iter().zip(rtt_names).map(|(&r, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        rtt_c1_s: 0.05,
                        rtt_c2_s: r,
                        ..heavy
                    },
                )
            }),
        ),
        // Set 3: neutral, class-2 congestion control varies.
        set(
            "set3 neutral: vary class-2 congestion control",
            "TCP congestion control alg. for class 2",
            [
                ("CUBIC/CUBIC", nni_emu::CcKind::Cubic),
                ("CUBIC/NewReno", nni_emu::CcKind::NewReno),
            ]
            .map(|(tick, cc2)| {
                (
                    tick.to_string(),
                    ExperimentParams {
                        cc_c1: nni_emu::CcKind::Cubic,
                        cc_c2: cc2,
                        ..heavy
                    },
                )
            }),
        ),
        // Sets 4–6: policing.
        set(
            "set4 policing: vary mean flow size (both classes)",
            "Mean flow size [Mb]",
            sizes.iter().zip(size_names).map(|(&s, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Policing(0.2),
                        flow_size_c1_bits: s,
                        flow_size_c2_bits: s,
                        ..policing_load
                    },
                )
            }),
        ),
        set(
            "set5 policing: vary RTT (both classes)",
            "RTT [ms]",
            rtts.iter().zip(rtt_names).map(|(&r, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Policing(0.2),
                        rtt_c1_s: r,
                        rtt_c2_s: r,
                        ..policing_load
                    },
                )
            }),
        ),
        set(
            "set6 policing: vary policing rate",
            "Policing rate [%]",
            rates.iter().zip(rate_names).map(|(&f, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Policing(f),
                        ..policing_load
                    },
                )
            }),
        ),
        // Sets 7–9: shaping.
        set(
            "set7 shaping: vary mean flow size (both classes)",
            "Mean flow size [Mb]",
            sizes.iter().zip(size_names).map(|(&s, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Shaping(0.2),
                        flow_size_c1_bits: s,
                        flow_size_c2_bits: s,
                        // 1 Mb flows only press a 20 Mb/s shaper lane at
                        // very high aggregation (DESIGN.md calibration).
                        flows_per_path: if s <= 1.5 * mb { 140 } else { 70 },
                        ..heavy
                    },
                )
            }),
        ),
        set(
            "set8 shaping: vary RTT (both classes)",
            "RTT [ms]",
            rtts.iter().zip(rtt_names).map(|(&r, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Shaping(0.2),
                        rtt_c1_s: r,
                        rtt_c2_s: r,
                        ..heavy
                    },
                )
            }),
        ),
        set(
            "set9 shaping: vary shaping rate",
            "Shaping rate [%]",
            rates.iter().zip(rate_names).map(|(&f, n)| {
                (
                    n.to_string(),
                    ExperimentParams {
                        mechanism: Mechanism::Shaping(f),
                        ..shaping_sweep_load
                    },
                )
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_nine_sets_of_valid_scenarios() {
        let sets = table2_sets(30.0, 1);
        assert_eq!(sets.len(), 9);
        let total: usize = sets.iter().map(|s| s.len()).sum();
        assert_eq!(total, 4 + 4 + 2 + 4 + 4 + 4 + 4 + 4 + 4);
        for s in &sets {
            for scenario in s.scenarios() {
                assert_eq!(scenario.path_traffic.len(), 4);
                assert_eq!(scenario.measurement.duration_s, 30.0);
                assert_eq!(scenario.measurement.seed, 1);
            }
        }
        // Neutral sets carry no mechanism; policing/shaping sets carry one.
        assert!(sets[0].scenarios().all(|s| s.differentiation.is_empty()));
        assert!(sets[5].scenarios().all(|s| s.differentiation.len() == 1));
        // The default 20% policing regime keeps its policer meaningfully
        // loaded (the 30–50% members of the rate sweep intentionally sit
        // above sustained demand and clip slow-start bursts only, so the
        // demand audit applies to the sweep's terminal member alone).
        let twenty = sets[5]
            .members()
            .iter()
            .find(|m| m.tick == "20")
            .expect("set 6 sweeps down to 20%");
        nni_scenario::assert_demand_exceeds_policed_rate(&twenty.scenario);
        // The 50% shaping experiment is behaviourally neutral.
        let half = &sets[8].members()[0];
        assert_eq!(half.tick, "50");
        assert!(!half.scenario.expectation.expect_flagged);
    }
}
