//! Shared argument parsing for the experiment binaries — the one place the
//! `--duration/--seed/--set/--executor/--workers/--lenient` surface lives,
//! instead of per-bin copies.

use nni_scenario::{Executor, ProcessExecutor, SerialExecutor, ShardedExecutor};

/// Which optional flags a binary supports. Unsupported flags are rejected
/// (the historical strictness of every bin), so `exp_fig10 --executor
/// sharded` fails loudly instead of silently running serially.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpCaps {
    /// `--set K` (multi-set sweeps only).
    pub set: bool,
    /// `--executor` / `--workers` (executor-batched sweeps only).
    pub executor: bool,
    /// `--lenient` (bins with a verdict-gated exit code only).
    pub lenient: bool,
}

impl ExpCaps {
    /// Everything: the full sweep surface (`exp_fig8`).
    pub fn sweep() -> ExpCaps {
        ExpCaps {
            set: true,
            executor: true,
            lenient: true,
        }
    }

    /// Executor fan-out without `--set` (`exp_robustness`).
    pub fn batch() -> ExpCaps {
        ExpCaps {
            set: false,
            executor: true,
            lenient: true,
        }
    }

    /// Single-experiment bins with a verdict exit (`exp_fig10`,
    /// `exp_baselines`).
    pub fn single() -> ExpCaps {
        ExpCaps {
            set: false,
            executor: false,
            lenient: true,
        }
    }

    /// Only `--duration` / `--seed` (`exp_fig11`).
    pub fn plain() -> ExpCaps {
        ExpCaps::default()
    }
}

/// Parsed common arguments of an `exp_*` binary.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// `--duration SECS`: simulated seconds per experiment.
    pub duration: f64,
    /// `--seed N`: base simulation seed.
    pub seed: u64,
    /// `--set K`: restrict a multi-set sweep to set `K` (1-based).
    pub set: Option<usize>,
    /// `--lenient`: report verdict mismatches without a nonzero exit (for
    /// short-duration smoke runs whose verdicts are not calibrated).
    pub lenient: bool,
    executor: ExecutorKind,
    workers: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecutorKind {
    Serial,
    Sharded,
    /// Worker subprocesses (`nni-worker`; override the binary with
    /// `NNI_WORKER_BIN`).
    Process,
}

impl ExpArgs {
    /// Parses `std::env::args`, panicking on unknown or unsupported flags
    /// (the historical behaviour of every bin).
    pub fn parse(default_duration: f64, default_seed: u64, caps: ExpCaps) -> ExpArgs {
        let mut out = ExpArgs {
            duration: default_duration,
            seed: default_seed,
            set: None,
            lenient: false,
            executor: ExecutorKind::Serial,
            workers: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let value = |i: usize, usage: &str| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} requires a value: {usage}", args[i]))
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--duration" => {
                    out.duration = value(i, "--duration SECS")
                        .parse()
                        .expect("--duration SECS");
                    i += 2;
                }
                "--seed" => {
                    out.seed = value(i, "--seed N").parse().expect("--seed N");
                    i += 2;
                }
                "--set" if caps.set => {
                    out.set = Some(value(i, "--set K").parse().expect("--set K"));
                    i += 2;
                }
                "--executor" if caps.executor => {
                    out.executor = match value(i, "--executor serial|sharded|process") {
                        "serial" => ExecutorKind::Serial,
                        "sharded" => ExecutorKind::Sharded,
                        "process" => ExecutorKind::Process,
                        other => panic!("--executor serial|sharded|process, got {other}"),
                    };
                    i += 2;
                }
                "--workers" if caps.executor => {
                    out.workers = Some(value(i, "--workers N").parse().expect("--workers N"));
                    i += 2;
                }
                "--lenient" if caps.lenient => {
                    out.lenient = true;
                    i += 1;
                }
                other => panic!("unknown or unsupported argument {other}"),
            }
        }
        out
    }

    /// The executor the flags selected: serial by default; `--executor
    /// sharded` fans out over `--workers` threads (default: all cores);
    /// `--executor process` fans out over `--workers` `nni-worker`
    /// subprocesses (default: all cores; binary resolved next to the
    /// running executable, override with `NNI_WORKER_BIN`). A bare
    /// `--workers N` implies the sharded executor — asking for a worker
    /// count is asking for parallelism.
    pub fn executor(&self) -> Box<dyn Executor> {
        let auto = || {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        };
        match (self.executor, self.workers) {
            (ExecutorKind::Serial, None) => Box::new(SerialExecutor),
            (ExecutorKind::Process, n) => Box::new(ProcessExecutor::new(n.unwrap_or_else(auto))),
            (_, Some(n)) => Box::new(ShardedExecutor::new(n)),
            (ExecutorKind::Sharded, None) => Box::new(ShardedExecutor::auto()),
        }
    }

    /// Exits nonzero on a failed acceptance check unless `--lenient`.
    pub fn finish(&self, ok: bool) {
        if !ok {
            if self.lenient {
                eprintln!("(--lenient: verdict mismatches ignored)");
            } else {
                std::process::exit(1);
            }
        }
    }
}
