//! Regenerates **Figure 11**: queue occupancy over time of a neutral link
//! (`l13`, driven near capacity by background traffic) versus a policing
//! link (`l14`). The paper's point: looking at the queues alone, "there is
//! no clue that l14 applies traffic differentiation while l13 does not" —
//! both are just busy links. Only the *inconsistency of external
//! observations* tells them apart.
//!
//! Usage: `exp_fig11 [--duration SECS] [--seed N]`

use nni_bench::{run_topology_b, ExpArgs, ExpCaps, Table, TopologyBParams};

fn main() {
    let defaults = TopologyBParams::default();
    let args = ExpArgs::parse(defaults.duration_s, defaults.seed, ExpCaps::plain());
    let p = TopologyBParams {
        duration_s: args.duration,
        seed: args.seed,
        ..defaults
    };

    println!(
        "== Figure 11: queue occupancy, topology B, {} s ==\n",
        p.duration_s
    );
    let out = run_topology_b(p);

    let render_series = |name: &str, trace: &nni_emu::QueueTrace| {
        println!("--- {name} ---");
        // Coarse ASCII sparkline: bucket samples into 60 columns.
        let n = trace.bytes.len();
        if n == 0 {
            println!("(no samples)");
            return;
        }
        let cols = 60.min(n);
        let per = n.div_ceil(cols);
        let max = trace.max_bytes().max(1);
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut line = String::new();
        for c in 0..cols {
            let lo = c * per;
            let hi = ((c + 1) * per).min(n);
            let avg: u64 = trace.bytes[lo..hi].iter().sum::<u64>() / (hi - lo).max(1) as u64;
            let idx = (avg as f64 / max as f64 * (glyphs.len() - 1) as f64).round() as usize;
            line.push(glyphs[idx.min(glyphs.len() - 1)]);
        }
        println!("[{line}]  (peak {:.2} Mb)", max as f64 * 8.0 / 1e6);
        println!(
            "mean occupancy: {:.2} Mb, samples: {n}\n",
            trace.mean_bytes() * 8.0 / 1e6
        );
    };

    render_series("l13 (neutral, near capacity)", &out.trace_l13);
    render_series("l14 (policing)", &out.trace_l14);

    let mut t = Table::new(vec![
        "link",
        "mean occupancy [Mb]",
        "peak [Mb]",
        "ground truth",
    ]);
    for (name, trace, truth) in [
        ("l13", &out.trace_l13, "neutral"),
        ("l14", &out.trace_l14, "POLICING"),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", trace.mean_bytes() * 8.0 / 1e6),
            format!("{:.3}", trace.max_bytes() as f64 * 8.0 / 1e6),
            truth.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "The queues look alike; the algorithm still tells them apart:\n\
         sequences containing l14 flagged: {}\n\
         sequences containing l13 flagged: {}",
        out.inference
            .nonneutral
            .iter()
            .filter(|s| {
                s.links()
                    .iter()
                    .any(|&l| out.paper.topology.link(l).name == "l14")
            })
            .count(),
        out.inference
            .nonneutral
            .iter()
            .filter(|s| {
                s.links()
                    .iter()
                    .any(|&l| out.paper.topology.link(l).name == "l13")
            })
            .count(),
    );
}
