//! Regenerates **Figure 10 + Table 3 metrics** on topology B: ground-truth
//! per-link per-class congestion (10a), inferred per-link-sequence
//! performance split by pair class (10b), and the §6.4 headline metrics
//! (false negatives, false positives, granularity).
//!
//! Usage: `exp_fig10 [--duration SECS] [--seed N] [--lenient]`

use nni_bench::{run_topology_b, ExpArgs, ExpCaps, Table, TopologyBParams};
use nni_core::prob_from_perf;
use nni_stats::FiveNumber;

fn main() {
    let defaults = TopologyBParams::default();
    let args = ExpArgs::parse(defaults.duration_s, defaults.seed, ExpCaps::single());
    let p = TopologyBParams {
        duration_s: args.duration,
        seed: args.seed,
        ..defaults
    };

    println!(
        "== Figure 10: topology B, {} s, policing {}%, seed {} ==\n",
        p.duration_s,
        p.policing_fraction * 100.0,
        p.seed
    );
    let out = run_topology_b(p);
    let g = &out.paper.topology;

    println!("--- Figure 10(a): actual link congestion probability per class ---");
    println!("(links marked * implement policing)\n");
    let mut ta = Table::new(vec!["link", "class c1 [%]", "class c2 [%]", "separation"]);
    for l in g.link_ids() {
        let name = &g.link(l).name;
        let mark = if out.paper.nonneutral_links.contains(&l) {
            "*"
        } else {
            ""
        };
        let [c1, c2] = out.link_congestion[l.index()];
        ta.row(vec![
            format!("{name}{mark}"),
            format!("{:5.2}", 100.0 * c1),
            format!("{:5.2}", 100.0 * c2),
            format!("{:+5.2}", 100.0 * (c2 - c1)),
        ]);
    }
    println!("{ta}");

    println!("--- Figure 10(b): inferred link-sequence performance by pair class ---");
    println!(
        "(inferred congestion probability = 1 - exp(-estimate); boxplots as min/q1/med/q3/max)\n"
    );
    let mut tb = Table::new(vec![
        "link sequence",
        "pairs",
        "c1-pair estimates [%]",
        "c2-pair estimates [%]",
        "mixed [%]",
        "verdict",
    ]);
    for (tau, tags, nonneutral) in &out.tagged_estimates {
        let names: Vec<String> = tau
            .links()
            .iter()
            .map(|&l| g.link(l).name.trim_start_matches('l').to_string())
            .collect();
        let mark = if tau
            .links()
            .iter()
            .any(|l| out.paper.nonneutral_links.contains(l))
        {
            "*"
        } else {
            ""
        };
        let bucket = |class: Option<usize>| -> String {
            let vals: Vec<f64> = tags
                .iter()
                .filter(|t| t.pure_class == class)
                .map(|t| 100.0 * (1.0 - prob_from_perf(t.estimate.max(0.0))))
                .collect();
            if vals.is_empty() {
                "-".into()
            } else if vals.len() == 1 {
                format!("{:.2}", vals[0])
            } else {
                let f = FiveNumber::of(&vals);
                format!("{:.2}/{:.2}/{:.2}", f.min, f.median, f.max)
            }
        };
        tb.row(vec![
            format!("⟨{}⟩{mark}", names.join(",")),
            tags.len().to_string(),
            bucket(Some(0)),
            bucket(Some(1)),
            bucket(None),
            if *nonneutral {
                "NON-NEUTRAL".into()
            } else {
                "neutral".into()
            },
        ]);
    }
    println!("{tb}");

    println!("--- §6.4 headline metrics ---");
    println!("identified (after redundancy removal):");
    for s in &out.inference.nonneutral {
        let names: Vec<String> = s.links().iter().map(|&l| g.link(l).name.clone()).collect();
        println!("  ⟨{}⟩", names.join(", "));
    }
    println!(
        "\nfalse-negative rate: {:.2} (paper: 0.00)",
        out.quality.false_negative_rate
    );
    println!(
        "false-positive rate: {:.2} (paper: 0.00)",
        out.quality.false_positive_rate
    );
    println!(
        "granularity:         {:.2} (paper: 2.7)",
        out.quality.granularity
    );
    println!(
        "\nsim: {} segments sent, {} delivered, {} dropped, {} flows completed",
        out.report.segments_sent,
        out.report.segments_delivered,
        out.report.segments_dropped,
        out.report.completed_flows
    );

    let ok = out.quality.false_negative_rate == 0.0 && out.quality.false_positive_rate == 0.0;
    println!(
        "\nheadline (FN = FP = 0): {}",
        if ok { "REPRODUCED" } else { "NOT reproduced" }
    );
    args.finish(ok);
}
