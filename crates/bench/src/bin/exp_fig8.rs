//! Regenerates **Table 2 + Figure 8(a–i)**: the nine experiment sets on
//! topology A. For each experiment it prints the per-path congestion
//! probability (the four bars of the corresponding Figure 8 panel) and the
//! algorithm's verdict; §6.3's headline claim is that the verdict is correct
//! in every experiment.
//!
//! Usage: `exp_fig8 [--duration SECS] [--seed N] [--set K]`

use nni_bench::{run_topology_a, table2_sets, Table};

fn main() {
    let mut duration = 60.0;
    let mut seed = 42u64;
    let mut only_set: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--duration" => {
                duration = args[i + 1].parse().expect("--duration SECS");
                i += 2;
            }
            "--seed" => {
                seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--set" => {
                only_set = Some(args[i + 1].parse().expect("--set K"));
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    println!("== Figure 8 / Table 2: topology A, {duration} s per experiment, seed {seed} ==\n");
    let mut correct = 0usize;
    let mut total = 0usize;
    for (k, set) in table2_sets(duration, seed).into_iter().enumerate() {
        if let Some(s) = only_set {
            if s != k + 1 {
                continue;
            }
        }
        println!("--- {} ---", set.name);
        let mut t = Table::new(vec![
            set.axis.clone(),
            "p1 (c1) [%]".into(),
            "p2 (c1) [%]".into(),
            "p3 (c2) [%]".into(),
            "p4 (c2) [%]".into(),
            "verdict".into(),
            "correct".into(),
        ]);
        for (tick, params) in set.experiments {
            let out = run_topology_a(params);
            let pc: Vec<String> = out
                .path_congestion
                .iter()
                .map(|p| format!("{:5.1}", 100.0 * p))
                .collect();
            t.row(vec![
                tick,
                pc[0].clone(),
                pc[1].clone(),
                pc[2].clone(),
                pc[3].clone(),
                if out.flagged_nonneutral {
                    "NON-NEUTRAL".into()
                } else {
                    "neutral".into()
                },
                if out.correct {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
            total += 1;
            correct += out.correct as usize;
        }
        println!("{t}");
    }
    println!("verdicts correct: {correct}/{total}");
    if correct != total {
        std::process::exit(1);
    }
}
