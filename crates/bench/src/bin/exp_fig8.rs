//! Regenerates **Table 2 + Figure 8(a–i)**: the nine experiment sets on
//! topology A. For each experiment it prints the per-path congestion
//! probability (the four bars of the corresponding Figure 8 panel) and the
//! algorithm's verdict; §6.3's headline claim is that the verdict is correct
//! in every experiment.
//!
//! Experiments are independent, so the whole sweep fans out across worker
//! threads with `--executor sharded` — results are identical to a serial
//! run, seed for seed.
//!
//! Usage: `exp_fig8 [--duration SECS] [--seed N] [--set K]
//!                  [--executor serial|sharded] [--workers N] [--lenient]`

use std::time::Instant;

use nni_bench::{table2_sets, ExpArgs, ExpCaps, Table};
use nni_scenario::run_sets;

fn main() {
    let args = ExpArgs::parse(60.0, 42, ExpCaps::sweep());
    let executor = args.executor();

    let sets: Vec<_> = table2_sets(args.duration, args.seed)
        .into_iter()
        .enumerate()
        .filter(|(k, _)| args.set.is_none_or(|s| s == k + 1))
        .map(|(_, set)| set)
        .collect();

    println!(
        "== Figure 8 / Table 2: topology A, {} s per experiment, seed {}, executor {} ==\n",
        args.duration,
        args.seed,
        executor.describe()
    );

    // Every selected set runs as one flattened executor batch; `run_sets`
    // re-slices the (input-ordered, tick-labelled) outcomes per set.
    let started = Instant::now();
    let per_set = run_sets(&sets, executor.as_ref());
    let elapsed = started.elapsed();

    let mut correct = 0usize;
    let mut total = 0usize;
    for (set, outcomes) in sets.iter().zip(&per_set) {
        println!("--- {} ---", set.name);
        let mut t = Table::new(vec![
            set.axis.clone(),
            "p1 (c1) [%]".into(),
            "p2 (c1) [%]".into(),
            "p3 (c2) [%]".into(),
            "p4 (c2) [%]".into(),
            "verdict".into(),
            "correct".into(),
        ]);
        for member in outcomes {
            let out = &member.outcome;
            let pc: Vec<String> = out
                .path_congestion
                .iter()
                .map(|p| format!("{:5.1}", 100.0 * p))
                .collect();
            t.row(vec![
                member.tick.clone(),
                pc[0].clone(),
                pc[1].clone(),
                pc[2].clone(),
                pc[3].clone(),
                if out.flagged_nonneutral {
                    "NON-NEUTRAL".into()
                } else {
                    "neutral".into()
                },
                if out.correct {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
            total += 1;
            correct += out.correct as usize;
        }
        println!("{t}");
    }
    println!(
        "verdicts correct: {correct}/{total}  (wall-clock {:.2} s, {})",
        elapsed.as_secs_f64(),
        executor.describe()
    );
    args.finish(correct == total);
}
