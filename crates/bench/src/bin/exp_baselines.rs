//! Ablation: **Algorithm 1 vs the related-work baselines** (§1, §8) on the
//! same topology-A policing experiment — literally the same: every baseline
//! consumes the identical [`MeasurementSet`](nni_scenario::MeasurementSet)
//! through the adapters of `nni_scenario::baselines` (NetPolice alone also
//! reads the raw report — its probes see inside the network).
//!
//! * Boolean tomography \[22\] *assumes neutrality*: it cannot blame the
//!   differentiating shared link without implicating clean paths, so it
//!   blames the victims' private links instead.
//! * Least-squares loss tomography \[7\]: its single-number-per-link fit
//!   leaves a large residual — the raw material of Lemma 1 — but by itself
//!   neither localizes nor certifies differentiation.
//! * A Glasnost-style detector \[11\] needs the class partition as input and
//!   yields a path-level verdict without localization.
//! * A NetPolice-style comparator \[31\] localizes — but only given perfect
//!   interior probe measurements the paper's threat model rules out.
//! * Algorithm 1 localizes the violation with no class knowledge and no
//!   interior measurements.
//!
//! Usage: `exp_baselines [--duration SECS] [--seed N] [--lenient]`

use nni_bench::{ExpArgs, ExpCaps, ExperimentParams, Mechanism, Table};
use nni_scenario::baselines;
use nni_scenario::library::topology_a_scenario;
use nni_tomography::flagged_links;

fn main() {
    let args = ExpArgs::parse(60.0, 42, ExpCaps::single());
    let scenario = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: args.duration,
        seed: args.seed,
        ..ExperimentParams::default()
    });
    println!(
        "== Baselines vs Algorithm 1: topology A, policing 20%, {} s ==\n",
        args.duration
    );
    // One acquisition feeds everything: the fused outcome (for Algorithm 1
    // and NetPolice's ground-truth probes) and the measurement set the
    // other baselines consume.
    let exp = scenario.compile();
    let out = exp.run();
    let set = exp.package(out.report.log.clone());
    let icfg = nni_scenario::InferenceConfig::of(&scenario);
    let g = &scenario.topology;
    let l5 = g.link_by_name("l5").unwrap();

    // --- Boolean tomography over per-interval congestion snapshots. ---
    let boolean = baselines::boolean(&set, &icfg);
    let mut tb = Table::new(vec!["link", "boolean tomography blame [%]", "ground truth"]);
    for l in g.link_ids() {
        tb.row(vec![
            g.link(l).name.clone(),
            format!("{:5.2}", 100.0 * boolean.prob(l)),
            if l == l5 {
                "POLICING".into()
            } else {
                "neutral".into()
            },
        ]);
    }
    println!("--- Boolean tomography (assumes neutrality) ---");
    println!("{tb}");
    println!(
        "blame assigned to the true culprit l5: {:.2}%  <- the baseline exonerates it\n",
        100.0 * boolean.prob(l5)
    );

    // --- Least-squares loss tomography over singleton + pair pathsets. ---
    let ls = baselines::loss(&set, &icfg);
    println!("--- Least-squares loss tomography (assumes neutrality) ---");
    println!(
        "fit residual: {:.4}  <- large residual = no neutral explanation fits (Lemma 1)",
        ls.residual_norm
    );
    println!(
        "per-link estimate for l5: {:.4} (a class-blind average)\n",
        ls.perf(l5)
    );

    // --- Glasnost-style differential detector (knows the classes). ---
    let verdict = baselines::glasnost(&set, &icfg, 0.05);
    println!("--- Glasnost-style detector (requires knowing the class partition) ---");
    println!(
        "class-1 congestion {:.1}%, class-2 congestion {:.1}%, differentiated: {}",
        100.0 * verdict.class1_congestion,
        100.0 * verdict.class2_congestion,
        verdict.differentiated
    );
    println!("(detects the symptom, cannot localize it to a link)\n");

    // --- NetPolice-style per-link comparator (perfect interior probes). ---
    let np = baselines::netpolice(&scenario, &out.report, 0.01);
    let np_flagged = flagged_links(&np);
    let np_names: Vec<String> = np_flagged.iter().map(|&l| g.link(l).name.clone()).collect();
    println!("--- NetPolice-style comparator (requires perfect interior probes) ---");
    println!(
        "links flagged from per-class probe loss rates: [{}]",
        np_names.join(", ")
    );
    println!("(localizes, but only with measurements end users cannot take)\n");

    // --- Algorithm 1. ---
    println!("--- Algorithm 1 (this paper) ---");
    let names: Vec<String> = out
        .inference
        .nonneutral
        .iter()
        .map(|s| {
            let inner: Vec<String> = s.links().iter().map(|&l| g.link(l).name.clone()).collect();
            format!("⟨{}⟩", inner.join(","))
        })
        .collect();
    println!(
        "identified non-neutral link sequences: {} (ground truth: ⟨l5⟩)",
        names.join(", ")
    );
    println!("no class knowledge required; violation localized.");

    let ok = out.flagged_nonneutral
        && out.inference.nonneutral.iter().any(|s| s.contains(l5))
        && boolean.prob(l5) < 0.01
        && verdict.differentiated
        && np_flagged.contains(&l5);
    println!("\nablation story holds: {}", if ok { "yes" } else { "NO" });
    args.finish(ok);
}
