//! Ablation: **Algorithm 1 vs the related-work baselines** (§1, §8) on the
//! same topology-A policing experiment.
//!
//! * Boolean tomography [22] *assumes neutrality*: it cannot blame the
//!   differentiating shared link without implicating clean paths, so it
//!   blames the victims' private links instead.
//! * Least-squares loss tomography [7]: its single-number-per-link fit
//!   leaves a large residual — the raw material of Lemma 1 — but by itself
//!   neither localizes nor certifies differentiation.
//! * A Glasnost-style detector [11] needs the class partition as input and
//!   yields a path-level verdict without localization.
//! * Algorithm 1 localizes the violation with no class knowledge.
//!
//! Usage: `exp_baselines [--duration SECS] [--seed N]`

use nni_bench::{run_topology_a, ExperimentParams, Mechanism, Table};
use nni_core::Observations;
use nni_measure::{MeasuredObservations, NormalizeConfig};
use nni_tomography::{boolean_infer, glasnost_detect, loss_infer, Snapshot};
use nni_topology::library::topology_a;
use nni_topology::{PathId, PathSet};

fn main() {
    let mut duration = 60.0;
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--duration" => {
                duration = args[i + 1].parse().expect("--duration SECS");
                i += 2;
            }
            "--seed" => {
                seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let params = ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: duration,
        seed,
        ..ExperimentParams::default()
    };
    println!("== Baselines vs Algorithm 1: topology A, policing 20%, {duration} s ==\n");
    let out = run_topology_a(params);
    let paper = topology_a(params.rtt_c1_s, params.rtt_c2_s);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").unwrap();

    // --- Boolean tomography over per-interval congestion snapshots. ---
    let log = &out.report.log;
    let snapshots: Vec<Snapshot> = (0..log.interval_count())
        .filter_map(|t| {
            let snap: Vec<bool> = g
                .path_ids()
                .map(|p| {
                    let m = log.sent(t, p);
                    m > 0 && log.lost(t, p) as f64 > params.loss_threshold * m as f64
                })
                .collect();
            // Skip intervals with no information at all.
            let any_active = g.path_ids().any(|p| log.sent(t, p) > 0);
            any_active.then_some(snap)
        })
        .collect();
    let boolean = boolean_infer(g, &snapshots);

    let mut tb = Table::new(vec!["link", "boolean tomography blame [%]", "ground truth"]);
    for l in g.link_ids() {
        tb.row(vec![
            g.link(l).name.clone(),
            format!("{:5.2}", 100.0 * boolean.prob(l)),
            if l == l5 {
                "POLICING".into()
            } else {
                "neutral".into()
            },
        ]);
    }
    println!("--- Boolean tomography (assumes neutrality) ---");
    println!("{tb}");
    println!(
        "blame assigned to the true culprit l5: {:.2}%  <- the baseline exonerates it\n",
        100.0 * boolean.prob(l5)
    );

    // --- Least-squares loss tomography over singleton + pair pathsets. ---
    let obs = MeasuredObservations::new(
        log,
        NormalizeConfig {
            loss_threshold: params.loss_threshold,
            seed: seed ^ 0xDEAD,
        },
    );
    let group: Vec<PathId> = g.path_ids().collect();
    let mut pathsets: Vec<PathSet> = g.path_ids().map(PathSet::single).collect();
    for i in 0..4 {
        for j in i + 1..4 {
            pathsets.push(PathSet::pair(PathId(i), PathId(j)));
        }
    }
    let y: Vec<f64> = pathsets
        .iter()
        .map(|p| obs.pathset_perf(&group, p))
        .collect();
    let ls = loss_infer(g, &pathsets, &y);
    println!("--- Least-squares loss tomography (assumes neutrality) ---");
    println!(
        "fit residual: {:.4}  <- large residual = no neutral explanation fits (Lemma 1)",
        ls.residual_norm
    );
    println!(
        "per-link estimate for l5: {:.4} (a class-blind average)\n",
        ls.perf(l5)
    );

    // --- Glasnost-style differential detector (knows the classes). ---
    let verdict = glasnost_detect(
        log,
        &paper.classes[0],
        &paper.classes[1],
        params.loss_threshold,
        0.05,
    );
    println!("--- Glasnost-style detector (requires knowing the class partition) ---");
    println!(
        "class-1 congestion {:.1}%, class-2 congestion {:.1}%, differentiated: {}",
        100.0 * verdict.class1_congestion,
        100.0 * verdict.class2_congestion,
        verdict.differentiated
    );
    println!("(detects the symptom, cannot localize it to a link)\n");

    // --- Algorithm 1. ---
    println!("--- Algorithm 1 (this paper) ---");
    let names: Vec<String> = out
        .inference
        .nonneutral
        .iter()
        .map(|s| {
            let inner: Vec<String> = s.links().iter().map(|&l| g.link(l).name.clone()).collect();
            format!("⟨{}⟩", inner.join(","))
        })
        .collect();
    println!(
        "identified non-neutral link sequences: {} (ground truth: ⟨l5⟩)",
        names.join(", ")
    );
    println!("no class knowledge required; violation localized.");

    let ok = out.flagged_nonneutral
        && out.inference.nonneutral.iter().any(|s| s.contains(l5))
        && boolean.prob(l5) < 0.01
        && verdict.differentiated;
    println!("\nablation story holds: {}", if ok { "yes" } else { "NO" });
    if !ok {
        std::process::exit(1);
    }
}
