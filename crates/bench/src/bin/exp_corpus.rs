//! The record/replay/re-infer workflow over on-disk measurement corpora —
//! the `MeasurementSet` seam as a command-line tool.
//!
//! ```text
//! exp_corpus record  --dir D [--seeds 1,2] [--take N] [--jsonl] [--append]
//! exp_corpus replay  --dir D [--verify]
//! exp_corpus reinfer --dir D [--thresholds 0.02,0.04,0.08]
//! ```
//!
//! * `record` simulates the scenario library's identity suite (the same 14
//!   scenarios the golden fingerprint tests pin) at each seed and stores
//!   every `MeasurementSet` in the corpus directory (binary codec;
//!   `--jsonl` additionally writes the human-readable dump next to each
//!   entry). `--take N` records only the first N suite members.
//!   `--append` adds onto an existing corpus — and exits 1 *before
//!   writing anything* if any new set's identity (scenario fingerprint +
//!   seed) is already stored, so a live tail never sees an entry rewrite
//!   itself.
//! * `replay` lists the corpus: provenance, shape, and set fingerprint per
//!   entry — with `--verify`, a checksum/decode failure or a provenance
//!   mismatch exits nonzero (the CI compatibility gate).
//! * `reinfer` runs Algorithm 1/2 over every stored set at each decision
//!   threshold **without any simulation** — measurement acquisition and
//!   inference fully decoupled.

use nni_bench::Table;
use nni_core::DecisionMode;
use nni_measure::{jsonl, Corpus, MeasurementSource};
use nni_scenario::library::identity_suite;
use nni_scenario::{infer, InferenceConfig, SerialExecutor};

fn usage() -> ! {
    eprintln!(
        "usage: exp_corpus record  --dir D [--seeds 1,2] [--take N] [--jsonl] [--append]\n\
                exp_corpus replay  --dir D [--verify]\n\
                exp_corpus reinfer --dir D [--thresholds 0.02,0.04]"
    );
    std::process::exit(2);
}

struct Args {
    dir: Option<String>,
    seeds: Vec<u64>,
    take: Option<usize>,
    jsonl: bool,
    append: bool,
    verify: bool,
    thresholds: Vec<f64>,
}

fn parse_args(rest: &[String]) -> Args {
    let mut out = Args {
        dir: None,
        seeds: vec![3, 11],
        take: None,
        jsonl: false,
        append: false,
        verify: false,
        thresholds: vec![0.02, 0.04, 0.08],
    };
    let mut i = 0;
    let value = |i: usize| -> &str {
        rest.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("{} requires a value", rest[i]);
            usage()
        })
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--dir" => {
                out.dir = Some(value(i).to_string());
                i += 2;
            }
            "--seeds" => {
                out.seeds = value(i)
                    .split(',')
                    .map(|s| s.parse().expect("--seeds N,N,..."))
                    .collect();
                i += 2;
            }
            "--take" => {
                out.take = Some(value(i).parse().expect("--take N"));
                i += 2;
            }
            "--thresholds" => {
                out.thresholds = value(i)
                    .split(',')
                    .map(|s| s.parse().expect("--thresholds F,F,..."))
                    .collect();
                i += 2;
            }
            "--jsonl" => {
                out.jsonl = true;
                i += 1;
            }
            "--append" => {
                out.append = true;
                i += 1;
            }
            "--verify" => {
                out.verify = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    out
}

fn open_corpus(args: &Args) -> Corpus {
    let dir = args.dir.clone().unwrap_or_else(|| usage());
    Corpus::open(dir).expect("corpus directory")
}

fn record(args: &Args) {
    let corpus = open_corpus(args);
    let mut suite = identity_suite();
    if let Some(n) = args.take {
        suite.truncate(n);
    }
    println!(
        "recording {} scenarios × {} seeds into {} ...",
        suite.len(),
        args.seeds.len(),
        corpus.dir().display()
    );
    // One batched acquisition through the executor seam.
    let experiments: Vec<_> = args
        .seeds
        .iter()
        .flat_map(|&seed| suite.iter().map(move |s| s.with_seed(seed).compile()))
        .collect();
    let sets = nni_scenario::Executor::acquire(&SerialExecutor, &experiments);
    if args.append {
        // Collision check before the first write: an append either lands
        // whole or not at all, and an existing identity is never silently
        // rewritten under a live tail.
        let existing: std::collections::HashSet<_> = corpus
            .entries()
            .expect("list corpus")
            .iter()
            .map(MeasurementSource::key)
            .collect();
        for set in &sets {
            if existing.contains(&set.key()) {
                eprintln!(
                    "exp_corpus: refusing to append: corpus already holds {} \
                     ({:?} seed {})",
                    set.key(),
                    set.provenance.scenario,
                    set.provenance.seed
                );
                std::process::exit(1);
            }
        }
    }
    for set in &sets {
        let path = corpus.store(set).expect("store entry");
        if args.jsonl {
            let sidecar = path.with_extension("jsonl");
            std::fs::write(&sidecar, jsonl::to_jsonl(set)).expect("write jsonl dump");
        }
        println!(
            "  {}  ({} intervals × {} paths, fp {:016x})",
            path.file_name().unwrap_or_default().to_string_lossy(),
            set.log.interval_count(),
            set.log.path_count(),
            set.fingerprint()
        );
    }
    println!("recorded {} sets", sets.len());
}

fn replay(args: &Args) {
    let corpus = open_corpus(args);
    // `entries()` decodes every file's provenance prefix, so a corrupt
    // entry surfaces *here*, not just at acquire time — report it and exit
    // 1 (a codec failure is a verification failure, not a crash).
    let entries = match corpus.entries() {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("FAILED to list corpus {}: {err}", corpus.dir().display());
            std::process::exit(1);
        }
    };
    let mut t = Table::new(vec![
        "scenario",
        "seed",
        "intervals",
        "paths",
        "set fingerprint",
        "build",
    ]);
    let mut failures = 0usize;
    for e in &entries {
        match e.acquire() {
            Ok(set) => {
                t.row(vec![
                    set.provenance.scenario.clone(),
                    set.provenance.seed.to_string(),
                    set.log.interval_count().to_string(),
                    set.log.path_count().to_string(),
                    format!("{:016x}", set.fingerprint()),
                    set.provenance.build.clone(),
                ]);
            }
            Err(err) => {
                failures += 1;
                eprintln!("FAILED to decode {}: {err}", e.path().display());
            }
        }
    }
    println!(
        "== corpus {} ({} entries) ==",
        corpus.dir().display(),
        entries.len()
    );
    println!("{t}");
    if failures > 0 {
        eprintln!("{failures} entries failed to decode");
        if args.verify {
            std::process::exit(1);
        }
    } else if args.verify {
        println!("verify: all entries decoded, checksums good");
    }
}

fn reinfer(args: &Args) {
    let corpus = open_corpus(args);
    let sets = match corpus.load_all() {
        Ok(sets) => sets,
        Err(err) => {
            eprintln!("FAILED to load corpus {}: {err}", corpus.dir().display());
            std::process::exit(1);
        }
    };
    println!(
        "== re-inference over {} stored sets (zero simulations) ==\n",
        sets.len()
    );
    let mut t = Table::new(
        std::iter::once("scenario / seed".to_string())
            .chain(args.thresholds.iter().map(|th| format!("thr {th}")))
            .collect::<Vec<_>>(),
    );
    for set in &sets {
        let mut row = vec![format!(
            "{} / {}",
            set.provenance.scenario, set.provenance.seed
        )];
        for &abs_threshold in &args.thresholds {
            let mut cfg = InferenceConfig::default();
            if let DecisionMode::Clustered {
                guard, rel_margin, ..
            } = cfg.algorithm.mode
            {
                cfg.algorithm.mode = DecisionMode::Clustered {
                    guard,
                    abs_threshold,
                    rel_margin,
                };
            }
            let result = infer(set, &cfg);
            row.push(if result.network_is_nonneutral() {
                format!("NON-NEUTRAL ({})", result.nonneutral.len())
            } else {
                "neutral".into()
            });
        }
        t.row(row);
    }
    println!("{t}");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let args = parse_args(&argv[1..]);
    match cmd.as_str() {
        "record" => record(&args),
        "replay" => replay(&args),
        "reinfer" => reinfer(&args),
        _ => usage(),
    }
}
