//! Regenerates the **§6.5 robustness sweep**: "we repeated our experiments
//! with all the loss thresholds and measurement intervals stated in Table 1,
//! and there was no significant change in the results."
//!
//! Builds one neutral and one policing scenario on topology A for every
//! (loss threshold × measurement interval) combination of Table 1, runs the
//! whole batch through the chosen executor, and checks the verdicts stay
//! put.
//!
//! Usage: `exp_robustness [--duration SECS] [--seed N]
//!                        [--executor serial|sharded] [--workers N]
//!                        [--lenient]`

use nni_bench::{ExpArgs, ExpCaps, ExperimentParams, Mechanism, Table};
use nni_scenario::compile_all;
use nni_scenario::library::topology_a_scenario;

fn main() {
    let args = ExpArgs::parse(60.0, 42, ExpCaps::batch());
    let executor = args.executor();

    println!(
        "== §6.5 robustness: thresholds x intervals, topology A, {} s, executor {} ==\n",
        args.duration,
        executor.describe()
    );

    let thresholds = [0.01, 0.05, 0.10];
    let intervals = [0.1, 0.2, 0.5];
    // One (neutral, policing) scenario pair per combination, all in one
    // executor batch.
    let mut scenarios = Vec::new();
    for &thr in &thresholds {
        for &interval in &intervals {
            let base = ExperimentParams {
                duration_s: args.duration,
                seed: args.seed,
                loss_threshold: thr,
                interval_s: interval,
                ..ExperimentParams::default()
            };
            scenarios.push(topology_a_scenario(base));
            scenarios.push(topology_a_scenario(ExperimentParams {
                mechanism: Mechanism::Policing(0.2),
                ..base
            }));
        }
    }
    let outcomes = executor.execute(&compile_all(&scenarios));

    let mut t = Table::new(vec![
        "loss threshold [%]",
        "interval [ms]",
        "neutral verdict",
        "policing verdict",
        "both correct",
    ]);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (k, pair) in outcomes.chunks(2).enumerate() {
        let [neutral, policing] = pair else {
            unreachable!("outcomes come in (neutral, policing) pairs");
        };
        let thr = thresholds[k / intervals.len()];
        let interval = intervals[k % intervals.len()];
        let ok = neutral.correct && policing.correct;
        total += 1;
        correct += ok as usize;
        t.row(vec![
            format!("{:.0}", thr * 100.0),
            format!("{:.0}", interval * 1000.0),
            if neutral.flagged_nonneutral {
                "NON-NEUTRAL".into()
            } else {
                "neutral".into()
            },
            if policing.flagged_nonneutral {
                "NON-NEUTRAL".to_string()
            } else {
                "neutral".to_string()
            },
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{t}");
    println!("combinations correct: {correct}/{total}");
    args.finish(correct == total);
}
