//! Regenerates the **§6.5 robustness sweep**: "we repeated our experiments
//! with all the loss thresholds and measurement intervals stated in Table 1,
//! and there was no significant change in the results."
//!
//! Runs one neutral and one policing experiment on topology A for every
//! (loss threshold × measurement interval) combination of Table 1 and checks
//! the verdicts stay put.
//!
//! Usage: `exp_robustness [--duration SECS] [--seed N]`

use nni_bench::{run_topology_a, ExperimentParams, Mechanism, Table};

fn main() {
    let mut duration = 60.0;
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--duration" => {
                duration = args[i + 1].parse().expect("--duration SECS");
                i += 2;
            }
            "--seed" => {
                seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    println!("== §6.5 robustness: thresholds x intervals, topology A, {duration} s ==\n");
    let mut t = Table::new(vec![
        "loss threshold [%]",
        "interval [ms]",
        "neutral verdict",
        "policing verdict",
        "both correct",
    ]);
    let mut correct = 0usize;
    let mut total = 0usize;
    for &thr in &[0.01, 0.05, 0.10] {
        for &interval in &[0.1, 0.2, 0.5] {
            let base = ExperimentParams {
                duration_s: duration,
                seed,
                loss_threshold: thr,
                interval_s: interval,
                ..ExperimentParams::default()
            };
            let neutral = run_topology_a(base);
            let policing = run_topology_a(ExperimentParams {
                mechanism: Mechanism::Policing(0.2),
                ..base
            });
            let ok = neutral.correct && policing.correct;
            total += 1;
            correct += ok as usize;
            t.row(vec![
                format!("{:.0}", thr * 100.0),
                format!("{:.0}", interval * 1000.0),
                if neutral.flagged_nonneutral {
                    "NON-NEUTRAL".into()
                } else {
                    "neutral".into()
                },
                if policing.flagged_nonneutral {
                    "NON-NEUTRAL".to_string()
                } else {
                    "neutral".to_string()
                },
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    println!("{t}");
    println!("combinations correct: {correct}/{total}");
    if correct != total {
        std::process::exit(1);
    }
}
