//! The topogen experiment: an ISP-scale generated hierarchy end to end,
//! plus the delay-vs-loss headline.
//!
//! Part 1 generates the `isp_200link` preset (≥200 links, ≥1000 measured
//! paths), simulates a neutral web-browsing scenario on it, and runs
//! inference with the population's recalibrated config — reporting sizes,
//! wall-clock, and the (expected-neutral) verdict.
//!
//! Part 2 runs the delay-visible shaper on topology A and contrasts the
//! loss-only and joint loss+delay verdicts, alongside the Glasnost-style
//! loss and delay baselines — the discrimination the delay feature buys.
//!
//! ```text
//! exp_topogen [--duration <s>] [--seed <n>]
//! ```

use std::time::Instant;

use nni_scenario::baselines::{glasnost, glasnost_delay};
use nni_scenario::library::{delay_visible_shaper, HEADLINE_DELAY_FEATURE};
use nni_scenario::{infer_scored, InferenceConfig};
use nni_topogen::{generate, isp_scenario, IspParams};

fn main() {
    let mut duration_s = 3.0;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration" => {
                duration_s = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--duration needs seconds");
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: exp_topogen [--duration <s>] [--seed <n>]");
                std::process::exit(2);
            }
        }
    }

    // Part 1: the generated ISP hierarchy at headline scale.
    let params = IspParams::isp_200link();
    let t0 = Instant::now();
    let paper = generate(&params, seed);
    println!(
        "generated isp_200link: {} nodes, {} links, {} paths ({:?})",
        paper.topology.nodes().len(),
        paper.topology.link_count(),
        paper.topology.path_count(),
        t0.elapsed()
    );

    let scenario = isp_scenario(&params, duration_s, seed);
    let t1 = Instant::now();
    let set = scenario.compile().simulate();
    let sim_elapsed = t1.elapsed();
    let t2 = Instant::now();
    let outcome = infer_scored(&set, &InferenceConfig::of(&scenario), &scenario.expectation);
    println!(
        "isp_200link_{duration_s}s: simulate {sim_elapsed:?}, infer {:?}, flagged={} correct={}",
        t2.elapsed(),
        outcome.flagged_nonneutral,
        outcome.correct
    );

    // Part 2: the delay-vs-loss headline on topology A.
    let headline = delay_visible_shaper(10.0, seed);
    let set = headline.compile().simulate();
    let joint_cfg = InferenceConfig::of(&headline);
    let loss_cfg = InferenceConfig {
        delay: None,
        ..joint_cfg
    };
    let joint = infer_scored(&set, &joint_cfg, &headline.expectation);
    let loss = infer_scored(&set, &loss_cfg, &headline.expectation);
    println!(
        "delay_visible_shaper: joint flagged={} (correct={}), loss-only flagged={} (correct={})",
        joint.flagged_nonneutral, joint.correct, loss.flagged_nonneutral, loss.correct
    );
    let g_loss = glasnost(&set, &loss_cfg, 0.05);
    let g_delay = glasnost_delay(&set, &HEADLINE_DELAY_FEATURE, 0.05)
        .expect("headline set carries a delay grid");
    println!(
        "glasnost loss: differentiated={} ({:.3} vs {:.3}); glasnost delay: differentiated={} ({:.3} vs {:.3})",
        g_loss.differentiated,
        g_loss.class1_congestion,
        g_loss.class2_congestion,
        g_delay.differentiated,
        g_delay.class1_congestion,
        g_delay.class2_congestion
    );
}
