//! Records the repo's perf trajectory: runs the emulator- and
//! executor-dominated workloads (the same ones `bench_emulator` /
//! `bench_executor` measure) and appends one JSON entry with per-bench
//! mean/median/p95 to `BENCH_emulator.json`.
//!
//! The committed file carries one entry per milestone commit, so `git log
//! -p BENCH_emulator.json` *is* the performance history; CI additionally
//! runs `--smoke` on every push and uploads the result as an artifact.
//!
//! ```text
//! perf_record [--smoke] [--label <name>] [--out <path>] [--fresh]
//!             [--check] [--baseline <path>]
//!   --smoke     few iterations per bench (CI-friendly, minutes -> seconds)
//!   --label     entry label (default "local")
//!   --out       trajectory file (default BENCH_emulator.json)
//!   --fresh     start a new file instead of appending
//!   --check     exit 1 if any bench's median regresses more than 2x
//!               against the latest entry in the baseline file
//!   --baseline  file --check compares against (default BENCH_emulator.json)
//! ```

use nni_bench::{run_topology_a, table2_sets, ExperimentParams, Mechanism};
use nni_emu::{
    link_params, measured_routes, CcKind, RouteId, SimConfig, Simulator, SizeDist, TrafficSpec,
};
use nni_scenario::{
    default_worker_bin, reinfer_sets, Executor, MeasurementCache, ProcessExecutor, SerialExecutor,
    StreamingInference, SweepSet, WorkerTransport,
};
use nni_topology::library::topology_a;
use std::time::{Duration, Instant};

/// Medians must stay within this factor of the baseline under `--check`.
const REGRESSION_FACTOR: f64 = 2.0;

struct BenchResult {
    name: &'static str,
    mean: Duration,
    median: Duration,
    p95: Duration,
    iters: usize,
}

/// Times `iters + 1` runs of `f`, discards the first as warm-up, and
/// reports nearest-rank order statistics over the rest (mirroring the
/// criterion shim's rejection policy at the whole-run granularity).
fn measure<T>(name: &'static str, iters: usize, mut f: impl FnMut() -> T) -> BenchResult {
    let mut samples = Vec::with_capacity(iters + 1);
    for _ in 0..iters + 1 {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.remove(0); // warm-up
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    samples.sort_unstable();
    let rank =
        |q: f64| samples[((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1];
    BenchResult {
        name,
        mean,
        median: rank(0.50),
        p95: rank(0.95),
        iters: samples.len(),
    }
}

fn emulator_workload() -> u64 {
    // One simulated second of a loaded dumbbell (bench_emulator's
    // `emulator/topology_a_1s`).
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let cfg = SimConfig {
        duration_s: 1.0,
        warmup_s: 0.0,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(link_params(g, &[]), measured_routes(g), 4, 2, cfg);
    for p in 0..4u32 {
        sim.add_traffic(TrafficSpec {
            route: RouteId(p),
            class: (p >= 2) as u8,
            cc: CcKind::Cubic.into(),
            size: SizeDist::Fixed { bytes: 100_000_000 },
            mean_gap_s: 10.0,
            parallel: 4,
        });
    }
    sim.run().segments_sent
}

/// Three simulated seconds of light web traffic over the generated
/// `isp_200link` hierarchy (240 links, 1056 measured paths): the
/// acquisition half only — simulate + fold into a measurement set — so
/// the number tracks the emulator's scaling with topology size.
fn topogen_workload(scenario: &nni_scenario::Scenario) -> usize {
    scenario.compile().simulate().log.interval_count()
}

fn fig8_workload() -> bool {
    run_topology_a(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: 10.0,
        ..ExperimentParams::default()
    })
    .flagged_nonneutral
}

fn sweep_workload(experiments: &[nni_scenario::Experiment]) -> usize {
    SerialExecutor.execute(experiments).len()
}

/// The re-inference sweep: 5 distinct scenarios × 10 decision thresholds
/// through the measurement-set seam (5 simulations + 50 inferences per
/// iteration; a fresh cache each time, so the measurement captures the full
/// acquire-then-fan-out cost).
fn reinfer_sets_for_workload() -> Vec<SweepSet> {
    let thresholds = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.15, 0.20];
    let mk = |mechanism, seed| {
        nni_scenario::library::topology_a_scenario(ExperimentParams {
            mechanism,
            duration_s: 3.0,
            seed,
            ..ExperimentParams::default()
        })
    };
    [
        mk(Mechanism::Neutral, 1),
        mk(Mechanism::Policing(0.2), 1),
        mk(Mechanism::Policing(0.3), 2),
        mk(Mechanism::Shaping(0.3), 1),
        mk(Mechanism::Neutral, 2),
    ]
    .iter()
    .enumerate()
    .map(|(i, b)| SweepSet::decision_thresholds(format!("thr/{i}"), b, &thresholds))
    .collect()
}

fn reinfer_workload(sets: &[SweepSet]) -> usize {
    let cache = MeasurementCache::new();
    reinfer_sets(sets, &SerialExecutor, &cache).len()
}

/// The measurement the streaming workload folds: a 60-interval policing
/// run (simulated once, outside the timed region).
fn live_set_for_workload() -> nni_scenario::MeasurementSet {
    let mut s = nni_scenario::library::topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: 7.0,
        ..ExperimentParams::default()
    });
    s.measurement.warmup_s = Some(1.0);
    s.compile().simulate()
}

/// The `nni-live` hot path: fold the 60 intervals one at a time into a
/// [`StreamingInference`], re-deriving the verdict per closed interval
/// (incremental Algorithm 2 counters + the cheap decision half — never a
/// full recompute).
fn live_workload(set: &nni_scenario::MeasurementSet) -> u64 {
    let cfg = nni_scenario::InferenceConfig::default();
    let mut live = StreamingInference::new(&set.topology, set.provenance.seed, &cfg);
    let mut acc = 0u64;
    for t in 1..=set.log.interval_count() {
        live.advance(&set.log, t);
        acc ^= live.verdict().fingerprint();
    }
    acc
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_entry(label: &str, mode: &str, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("  {\n");
    out.push_str(&format!("    \"label\": \"{}\",\n", json_escape(label)));
    out.push_str(&format!("    \"mode\": \"{mode}\",\n"));
    out.push_str("    \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "      \"{}\": {{\"mean_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}, \"iters\": {}}}{comma}\n",
            r.name,
            r.mean.as_nanos(),
            r.median.as_nanos(),
            r.p95.as_nanos(),
            r.iters
        ));
    }
    out.push_str("    }\n  }");
    out
}

/// Latest recorded median per bench name in a perf-trajectory file, by
/// line scan — the file format is exactly what [`json_entry`] emits (one
/// `"name": {... "median_ns": N ...}` line per bench), so no JSON parser
/// is needed. Later entries overwrite earlier ones: the comparison is
/// always against the file's most recent entry carrying that bench.
fn baseline_medians(text: &str) -> Vec<(String, u128)> {
    let mut medians: Vec<(String, u128)> = Vec::new();
    for line in text.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(rest) = rest.split_once("\"median_ns\": ").map(|(_, r)| r) else {
            continue;
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let Ok(median) = digits.parse::<u128>() else {
            continue;
        };
        match medians.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = median,
            None => medians.push((name.to_string(), median)),
        }
    }
    medians
}

/// The `--check` gate: every measured median must be within
/// [`REGRESSION_FACTOR`] of the baseline's latest median for the same
/// bench. Benches absent from the baseline (e.g. newly added workloads)
/// are reported but cannot fail the gate.
fn check_regressions(results: &[BenchResult], baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = baseline_medians(&text);
    if baseline.is_empty() {
        return Err(format!("baseline {baseline_path} has no bench entries"));
    }
    let mut regressions = Vec::new();
    for r in results {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == r.name) else {
            eprintln!(
                "  check: {:<35} no baseline entry (new bench, skipped)",
                r.name
            );
            continue;
        };
        let ratio = r.median.as_nanos() as f64 / *base as f64;
        eprintln!(
            "  check: {:<35} median {:>10.3?} vs baseline {:>10.3?}  ({ratio:.2}x)",
            r.name,
            r.median,
            Duration::from_nanos(*base as u64)
        );
        if ratio > REGRESSION_FACTOR {
            regressions.push(format!(
                "{}: median {:?} is {ratio:.2}x the baseline {:?} (limit {REGRESSION_FACTOR}x)",
                r.name,
                r.median,
                Duration::from_nanos(*base as u64)
            ));
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(regressions.join("\n"))
    }
}

/// Appends `entry` to the JSON array in `path` (creating the file if
/// needed). The file format is exactly what this function emits, so the
/// textual append is safe.
fn append_entry(path: &str, entry: &str, fresh: bool) -> std::io::Result<()> {
    let existing = if fresh {
        None
    } else {
        std::fs::read_to_string(path).ok()
    };
    let content = match existing {
        Some(text) => {
            let trimmed = text.trim_end();
            let Some(body) = trimmed.strip_suffix(']') else {
                return Err(std::io::Error::other(format!(
                    "{path} is not a JSON array; use --fresh to overwrite"
                )));
            };
            format!("{},\n{entry}\n]\n", body.trim_end())
        }
        None => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, content)
}

fn main() {
    let mut smoke = false;
    let mut fresh = false;
    let mut check = false;
    let mut label = String::from("local");
    let mut out = String::from("BENCH_emulator.json");
    let mut baseline = String::from("BENCH_emulator.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--fresh" => fresh = true,
            "--check" => check = true,
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out = args.next().expect("--out needs a value"),
            "--baseline" => baseline = args.next().expect("--baseline needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_record [--smoke] [--label <name>] [--out <path>] \
                     [--fresh] [--check] [--baseline <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let mode = if smoke { "smoke" } else { "full" };
    let (emu_iters, fig8_iters, sweep_iters, reinfer_iters, live_iters) = if smoke {
        (5, 3, 2, 3, 5)
    } else {
        (20, 10, 8, 10, 20)
    };

    eprintln!("perf_record: measuring ({mode} mode) ...");
    let sweep: Vec<_> = table2_sets(3.0, 42)
        .iter()
        .flat_map(|s| s.compile())
        .collect();
    let reinfer = reinfer_sets_for_workload();
    let live_set = live_set_for_workload();

    let topogen_scenario =
        nni_topogen::isp_scenario(&nni_topogen::IspParams::isp_200link(), 3.0, 42);

    let mut results = vec![
        measure("emulator/topology_a_1s", emu_iters, emulator_workload),
        measure("topogen/isp_200link_3s", emu_iters, || {
            topogen_workload(&topogen_scenario)
        }),
        measure("experiment/fig8_policing_10s", fig8_iters, fig8_workload),
        measure("executor/table2_sweep_3s_serial", sweep_iters, || {
            sweep_workload(&sweep)
        }),
        measure("reinfer/threshold_sweep_5x10_3s", reinfer_iters, || {
            reinfer_workload(&reinfer)
        }),
        measure("live/incremental_recluster", live_iters, || {
            live_workload(&live_set)
        }),
    ];
    // The process-pool variant of the table-2 sweep needs the nni-worker
    // binary next to this one (build nni-service first); skip loudly — not
    // silently — when it is absent so a partial record is visible.
    let worker = default_worker_bin();
    if worker.exists() {
        let pool = ProcessExecutor::new(2).with_worker_bin(&worker);
        results.push(measure("process/table2_sweep_3s", sweep_iters, || {
            pool.execute(&sweep).len()
        }));
        // The same sweep with the frames crossing loopback TCP instead of
        // stdio pipes: the socket transport's framing + connect overhead
        // against the pipe baseline above.
        let tcp = ProcessExecutor::new(2)
            .with_worker_bin(&worker)
            .with_transport(WorkerTransport::Tcp);
        results.push(measure(
            "process_socket/table2_sweep_3s",
            sweep_iters,
            || tcp.execute(&sweep).len(),
        ));
    } else {
        eprintln!(
            "perf_record: skipping process/table2_sweep_3s and \
             process_socket/table2_sweep_3s \
             (worker binary {} not found; build nni-service first)",
            worker.display()
        );
    }
    for r in &results {
        eprintln!(
            "  {:<35} mean {:>10.3?}  median {:>10.3?}  p95 {:>10.3?} ({} iters)",
            r.name, r.mean, r.median, r.p95, r.iters
        );
    }
    if check {
        eprintln!("perf_record: checking medians against {baseline} ...");
        if let Err(e) = check_regressions(&results, &baseline) {
            eprintln!("perf_record: REGRESSION\n{e}");
            std::process::exit(1);
        }
        eprintln!("perf_record: no median regressed beyond {REGRESSION_FACTOR}x");
    }
    let entry = json_entry(&label, mode, &results);
    if let Err(e) = append_entry(&out, &entry, fresh) {
        eprintln!("perf_record: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("perf_record: appended entry \"{label}\" to {out}");
}
