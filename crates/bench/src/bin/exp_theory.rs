//! Regenerates the paper's **worked theory examples** (Figures 1–6) in exact
//! mode — no emulation, ground-truth oracles only:
//!
//! * Figure 1 — observable violation on the 4-link network;
//! * Figure 2 — NON-observable violation (the regulation is maskable);
//! * Figure 4 — observable; `⟨l1⟩` and `⟨l1,l2⟩` identifiable, `⟨l2⟩` not;
//! * Figure 5 — observable violation #2 (the pathset-correlation clue);
//! * Figure 6 — the slice system for `τ = ⟨l1⟩`;
//! * §5's worked Algorithm-1 example with its FN/FP/granularity numbers.

use nni_bench::Table;
use nni_core::{
    evaluate, identify, lemma3_condition, slice_for, theorem1, unsolvable_over_power_set, Classes,
    Config, EquivalentNetwork, ExactOracle, LinkPerf, NetworkPerf,
};
use nni_topology::library::{figure1, figure2, figure4, figure5, PaperTopology};
use nni_topology::LinkSeq;

/// Per-link `(name, class-1 number, class-2 number)` ground-truth deltas.
type Deltas = Vec<(&'static str, f64, f64)>;

fn truth(t: &PaperTopology, deltas: &[(&str, f64, f64)]) -> (Classes, NetworkPerf) {
    let classes = Classes::new(&t.topology, t.classes.clone()).expect("valid classes");
    let mut perf = NetworkPerf::congestion_free(&t.topology, 2);
    for &(name, x1, x2) in deltas {
        let l = t.topology.link_by_name(name).expect("known link");
        perf = perf.with_link(l, LinkPerf::per_class(vec![x1, x2]));
    }
    (classes, perf)
}

fn main() {
    println!("== Theory examples (exact mode, Figures 1-6) ==\n");
    let mut t = Table::new(vec![
        "example",
        "Theorem 1 observable",
        "brute-force unsolvable system",
        "agrees",
    ]);

    let cases: Vec<(&str, PaperTopology, Deltas)> = vec![
        (
            "Figure 1 (l1 non-neutral)",
            figure1(),
            vec![("l1", 0.0, 0.5)],
        ),
        (
            "Figure 2 (l1 non-neutral)",
            figure2(),
            vec![("l1", 0.0, 0.5)],
        ),
        (
            "Figure 4 (l1, l2 non-neutral)",
            figure4(),
            vec![("l1", 0.0, 0.4), ("l2", 0.0, 0.2)],
        ),
        (
            "Figure 5 (l1 congests c2 w.p. 0.5)",
            figure5(),
            vec![("l1", 0.0, (2.0_f64).ln())],
        ),
    ];
    for (name, topo, deltas) in &cases {
        let (classes, perf) = truth(topo, deltas);
        let th = theorem1(&topo.topology, &classes, &perf);
        let brute = unsolvable_over_power_set(&topo.topology, &classes, &perf);
        t.row(vec![
            name.to_string(),
            th.observable.to_string(),
            brute.to_string(),
            (th.observable == brute).to_string(),
        ]);
    }
    println!("{t}");

    // Figure 6: the slice system for τ = ⟨l1⟩ of Figure 4's network.
    let f4 = figure4();
    let l1 = f4.topology.link_by_name("l1").unwrap();
    let l2 = f4.topology.link_by_name("l2").unwrap();
    let s = slice_for(&f4.topology, &LinkSeq::single(l1)).expect("slice exists");
    println!("--- Figure 6: slice for τ = ⟨l1⟩ of Figure 4's network ---");
    println!(
        "path pairs sharing exactly ⟨l1⟩: {:?}",
        s.pairs
            .iter()
            .map(|(a, b)| format!("{{{a},{b}}}"))
            .collect::<Vec<_>>()
    );
    println!("|Θ_τ| = {} pathsets (paper: 7)", s.pathset_count());
    let a = s.routing_matrix();
    println!(
        "System 4: {} equations over {} logical links\n",
        a.rows(),
        a.cols()
    );

    // Lemma 3 and the §5 worked example.
    let (classes, perf) = truth(&f4, &[("l1", 0.0, 0.4), ("l2", 0.0, 0.2)]);
    println!("--- §4.2 / §5: identifiability and Algorithm 1 on Figure 4 ---");
    println!(
        "Lemma 3 holds for ⟨l1⟩: {}",
        lemma3_condition(&s, &classes, 0)
    );
    println!(
        "⟨l2⟩ has a slice: {} (paper: no path pair shares only l2)",
        slice_for(&f4.topology, &LinkSeq::single(l2)).is_some()
    );
    let oracle = ExactOracle::new(EquivalentNetwork::build(&f4.topology, &classes, &perf));
    let result = identify(&f4.topology, &oracle, Config::exact());
    let names: Vec<String> = result
        .nonneutral
        .iter()
        .map(|s| {
            let inner: Vec<String> = s
                .links()
                .iter()
                .map(|&l| f4.topology.link(l).name.clone())
                .collect();
            format!("⟨{}⟩", inner.join(","))
        })
        .collect();
    println!("Algorithm 1 identifies: {}", names.join(", "));
    let q = evaluate(&f4.topology, &result.nonneutral, &[l1, l2]);
    println!(
        "FN = {:.0}%, FP = {:.0}%, granularity = {} (paper: 0%, 0%, 1.5)",
        100.0 * q.false_negative_rate,
        100.0 * q.false_positive_rate,
        q.granularity
    );
}
