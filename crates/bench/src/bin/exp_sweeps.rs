//! Runs the scenario library's beyond-Table-2 sweep sets: the topology-B
//! policer-rate sweep, a mixed-CC fleet comparison on the topology-A
//! policing setup, and a seed fan-out of the mixed-CC neutral control —
//! each a first-class [`SweepSet`] executed as one batch. A final
//! **inference-axis** sweep fans ten decision thresholds over the policing
//! base through [`SweepSet::run_reinfer`]: one simulation, ten inferences
//! (the sim-count saving is printed).
//!
//! The acceptance check mirrors `exp_fig8`: every member's verdict must
//! match its scenario's expectation (skip with `--lenient` for
//! short-duration smoke runs).
//!
//! Usage: `exp_sweeps [--duration SECS] [--seed N]
//!                    [--executor serial|sharded] [--workers N] [--lenient]`

use std::time::Instant;

use nni_bench::{ExpArgs, ExpCaps, Table};
use nni_emu::{CcFleet, CcKind};
use nni_scenario::library::{
    mixed_cc_neutral_control, policer_rate_sweep_topology_b, topology_a_scenario, ExperimentParams,
    Mechanism, TopologyBParams,
};
use nni_scenario::{run_sets, MeasurementCache, SweepSet};

fn main() {
    let args = ExpArgs::parse(60.0, 42, ExpCaps::batch());
    let executor = args.executor();

    let policing_base = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: args.duration,
        seed: args.seed,
        ..ExperimentParams::default()
    });
    let sets = vec![
        policer_rate_sweep_topology_b(TopologyBParams {
            duration_s: args.duration,
            seed: args.seed,
            ..TopologyBParams::default()
        }),
        SweepSet::over_cc_fleets(
            "topology-a policing 20%: CC fleet mix",
            &policing_base,
            [
                ("all CUBIC".to_string(), CcFleet::Uniform(CcKind::Cubic)),
                (
                    "3:1 CUBIC/NewReno".to_string(),
                    CcFleet::fleet(&[(CcKind::Cubic, 3), (CcKind::NewReno, 1)]),
                ),
                ("all NewReno".to_string(), CcFleet::Uniform(CcKind::NewReno)),
            ],
        ),
        SweepSet::over_seeds(
            "topology-a mixed-cc neutral control: seeds",
            &mixed_cc_neutral_control(args.duration, args.seed),
            &[args.seed, args.seed + 1, args.seed + 2],
        ),
    ];

    println!(
        "== Library sweep sets: {} s per experiment, seed {}, executor {} ==\n",
        args.duration,
        args.seed,
        executor.describe()
    );

    let started = Instant::now();
    let per_set = run_sets(&sets, executor.as_ref());
    let elapsed = started.elapsed();

    let mut correct = 0usize;
    let mut total = 0usize;
    for (set, outcomes) in sets.iter().zip(&per_set) {
        println!("--- {} ---", set.name);
        let mut t = Table::new(vec![
            set.axis.clone(),
            "verdict".into(),
            "correct".into(),
            "drop rate [%]".into(),
        ]);
        for member in outcomes {
            let out = &member.outcome;
            let report = &out.report;
            let drop_pct = if report.segments_sent > 0 {
                100.0 * report.segments_dropped as f64 / report.segments_sent as f64
            } else {
                0.0
            };
            t.row(vec![
                member.tick.clone(),
                if out.flagged_nonneutral {
                    "NON-NEUTRAL".into()
                } else {
                    "neutral".into()
                },
                if out.correct {
                    "yes".into()
                } else {
                    "NO".into()
                },
                format!("{drop_pct:.2}"),
            ]);
            total += 1;
            correct += out.correct as usize;
        }
        println!("{t}");
    }
    // Inference-axis sweep over the policing base: N thresholds, one
    // simulation, served through the measurement cache.
    let thresholds = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10, 0.15, 0.20];
    let thr_set = SweepSet::decision_thresholds(
        "topology-a policing 20%: decision thresholds (re-inference)",
        &policing_base,
        &thresholds,
    );
    let cache = MeasurementCache::new();
    let sims_before = nni_scenario::simulation_count();
    let started = Instant::now();
    let reinferred = thr_set.run_reinfer(executor.as_ref(), &cache);
    let reinfer_elapsed = started.elapsed();
    let sims = nni_scenario::simulation_count() - sims_before;

    println!("--- {} ---", thr_set.name);
    let mut t = Table::new(vec![
        thr_set.axis.clone(),
        "verdict".into(),
        "correct".into(),
    ]);
    for member in &reinferred {
        let out = &member.outcome;
        t.row(vec![
            member.tick.clone(),
            if out.flagged_nonneutral {
                "NON-NEUTRAL".into()
            } else {
                "neutral".into()
            },
            if out.correct {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        total += 1;
        correct += out.correct as usize;
    }
    println!("{t}");
    println!(
        "re-inference: {} configs from {sims} simulation(s) in {:.2} s \
         (naive fused path would have run {})\n",
        reinferred.len(),
        reinfer_elapsed.as_secs_f64(),
        reinferred.len()
    );

    println!(
        "verdicts correct: {correct}/{total}  (wall-clock {:.2} s, {})",
        elapsed.as_secs_f64(),
        executor.describe()
    );
    args.finish(correct == total);
}
