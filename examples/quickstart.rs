//! Quickstart: detect and localize a neutrality violation in three steps.
//!
//! 1. Describe the network (here: the paper's Figure 5 star).
//! 2. Provide observations — here the exact ground-truth oracle; in practice
//!    you would collect end-to-end measurements (see the other examples).
//! 3. Run Algorithm 1 and read the identified non-neutral link sequences.
//!
//! Run with: `cargo run --example quickstart`

use netneutrality::core::{
    evaluate, identify, theorem1, Classes, Config, EquivalentNetwork, ExactOracle, LinkPerf,
    NetworkPerf,
};
use netneutrality::topology::library::figure5;

fn main() {
    // Step 1: the network. Figure 5 of the paper — three paths fan out of a
    // shared link l1; the network serves {p1} as the top class and throttles
    // {p2, p3}.
    let paper = figure5();
    let g = &paper.topology;
    let classes = Classes::new(g, paper.classes.clone()).expect("valid class partition");
    let l1 = g.link_by_name("l1").expect("figure 5 has l1");

    // Ground truth: l1 congests class-2 traffic with probability 0.5
    // (performance number -ln 0.5) and never congests class 1.
    let perf = NetworkPerf::congestion_free(g, 2)
        .with_link(l1, LinkPerf::per_class(vec![0.0, (2.0_f64).ln()]));

    // Theorem 1 says this violation is observable from the outside.
    let report = theorem1(g, &classes, &perf);
    println!("Theorem 1: violation observable = {}", report.observable);
    for (link, class) in &report.witnesses {
        println!(
            "  witness: regulation of class c{} at link {}",
            class + 1,
            g.link(*link).name
        );
    }

    // Step 2: observations. The exact oracle computes every pathset's
    // performance number from the equivalent neutral network.
    let oracle = ExactOracle::new(EquivalentNetwork::build(g, &classes, &perf));

    // Step 3: Algorithm 1.
    let result = identify(g, &oracle, Config::exact());
    println!("\nAlgorithm 1:");
    for verdict in &result.verdicts {
        println!(
            "  slice {}: unsolvability {:.4} -> {}",
            verdict.tau,
            verdict.unsolvability,
            if verdict.nonneutral {
                "NON-NEUTRAL"
            } else {
                "consistent"
            }
        );
    }
    println!("\nidentified non-neutral link sequences:");
    for seq in &result.nonneutral {
        let names: Vec<String> = seq
            .links()
            .iter()
            .map(|&l| g.link(l).name.clone())
            .collect();
        println!("  ⟨{}⟩", names.join(", "));
    }

    let quality = evaluate(g, &result.nonneutral, &[l1]);
    println!(
        "\nquality vs ground truth: FN {:.0}%, FP {:.0}%, granularity {:.1}",
        100.0 * quality.false_negative_rate,
        100.0 * quality.false_positive_rate,
        quality.granularity
    );
    assert!(result.network_is_nonneutral());
    assert!(result.nonneutral[0].contains(l1));
    println!("\nthe shared link l1 was correctly identified — quickstart done.");
}
