//! Quickstart: declare a scenario, run it, read the verdict.
//!
//! 1. Describe the experiment as a [`Scenario`]: a topology, a class
//!    partition, differentiation on any set of links, per-path traffic.
//! 2. Run it — serially, or fanned over seeds/worker threads with a
//!    [`ShardedExecutor`] (results are identical either way, seed for
//!    seed).
//! 3. Read the outcome: Algorithm 1's verdict, the localized non-neutral
//!    link sequences, and the quality score against ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use netneutrality::emu::policer_at_fraction;
use netneutrality::scenario::{
    seed_sweep, Executor, Expectation, Scenario, ShardedExecutor, TrafficProfile,
};
use netneutrality::topology::library::topology_a;

fn main() {
    // Step 1: the scenario. The paper's Figure 7 dumbbell — four paths
    // through a shared 100 Mb/s link l5, classes {p1, p2} and {p3, p4} —
    // with l5 policing class 2 down to 20% of capacity.
    let paper = topology_a(0.05, 0.05);
    let l5 = paper.link_named("l5");
    let (link, policer) = policer_at_fraction(&paper.topology, l5, 1, 0.2, 0.01);

    let mut builder = Scenario::builder("quickstart policing", paper.topology.clone())
        .classes(paper.classes.clone())
        .differentiate(link, policer) // repeatable: any number of links
        .duration_s(30.0)
        .seed(2)
        .expect(Expectation::nonneutral(vec![l5]));
    for path in paper.topology.path_ids() {
        let class = u8::from(paper.classes[1].contains(&path));
        builder = builder.path_traffic(
            path,
            TrafficProfile::pareto_bits(class, netneutrality::emu::CcKind::Cubic, 10e6, 10.0, 20),
        );
    }
    let scenario = builder.build().expect("valid scenario");

    // Step 2: run. Independent runs are embarrassingly parallel — fan the
    // seed sweep across worker threads; outcomes come back in seed order.
    let executor = ShardedExecutor::auto();
    println!(
        "running {} seeds of '{}' on the {} executor …",
        2,
        scenario.name,
        executor.describe()
    );
    let outcomes = executor.execute(&seed_sweep(&scenario, &[2, 3]));

    // Step 3: read the verdicts.
    for (outcome, seed) in outcomes.iter().zip([2, 3]) {
        println!("\n--- seed {seed} ---");
        println!(
            "per-path congestion probability: {:?}",
            outcome
                .path_congestion
                .iter()
                .map(|p| format!("{:.1}%", 100.0 * p))
                .collect::<Vec<_>>()
        );
        println!(
            "verdict: {}",
            if outcome.flagged_nonneutral {
                "NON-NEUTRAL"
            } else {
                "neutral"
            }
        );
        for seq in &outcome.inference.nonneutral {
            let names: Vec<String> = seq
                .links()
                .iter()
                .map(|&l| paper.topology.link(l).name.clone())
                .collect();
            println!(
                "identified non-neutral link sequence: ⟨{}⟩",
                names.join(", ")
            );
        }
        println!(
            "quality vs ground truth: FN {:.0}%, FP {:.0}%, granularity {:.1}",
            100.0 * outcome.quality.false_negative_rate,
            100.0 * outcome.quality.false_positive_rate,
            outcome.quality.granularity
        );
        assert!(outcome.flagged_nonneutral && outcome.correct);
        assert!(outcome.inference.nonneutral.iter().any(|s| s.contains(l5)));
    }
    println!("\nthe policing link l5 was correctly identified in every seed — quickstart done.");
}
