//! Why neutrality inference "turns tomography on its head" (§1, §8).
//!
//! The same differentiated network is analysed by:
//!   1. boolean tomography (assumes neutrality) — blames innocent links,
//!   2. least-squares loss tomography — cannot fit, leaves a residual,
//!   3. Algorithm 1 — reads that inconsistency as the *signal* and
//!      localizes the differentiating link.
//!
//! Everything runs in exact mode (ground-truth oracles), so the comparison
//! is about the *methods*, not measurement noise.
//!
//! Run with: `cargo run --example tomography_vs_inference`

use netneutrality::core::{
    identify, Classes, Config, EquivalentNetwork, ExactOracle, LinkPerf, NetworkPerf, Observations,
};
use netneutrality::tomography::{boolean_infer, loss_infer, Snapshot};
use netneutrality::topology::library::topology_a;
use netneutrality::topology::{power_set, PathId};

fn main() {
    // Topology A with the shared link l5 congesting class-2 traffic in 30%
    // of intervals and class-1 in 2%.
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").unwrap();
    let classes = Classes::new(g, paper.classes.clone()).unwrap();
    let perf = NetworkPerf::congestion_free(g, 2).with_link(
        l5,
        LinkPerf::per_class(vec![-(0.98_f64.ln()), -(0.70_f64.ln())]),
    );
    let oracle = ExactOracle::new(EquivalentNetwork::build(g, &classes, &perf));

    // 1. Boolean tomography on synthetic snapshots drawn from the ground
    //    truth: class-2 paths congest together, class-1 paths almost never.
    let snapshots: Vec<Snapshot> = (0..100)
        .map(|i| {
            let c2_congested = i % 10 < 3; // 30% of intervals
            let c1_congested = i % 50 == 0; // 2% of intervals
            g.path_ids()
                .map(|p| {
                    if paper.classes[1].contains(&p) {
                        c2_congested || c1_congested
                    } else {
                        c1_congested
                    }
                })
                .collect()
        })
        .collect();
    let boolean = boolean_infer(g, &snapshots);
    println!("1. boolean tomography (assumes neutrality):");
    for l in g.link_ids() {
        if boolean.prob(l) > 0.0 {
            println!(
                "   blames {} in {:.0}% of snapshots",
                g.link(l).name,
                100.0 * boolean.prob(l)
            );
        }
    }
    println!(
        "   blame on the true culprit l5: {:.0}%  <- exonerated! blaming l5 would\n\
         \x20  implicate the congestion-free class-1 paths\n",
        100.0 * boolean.prob(l5)
    );

    // 2. Least-squares loss tomography over all pathsets.
    let pathsets = power_set(g.path_count());
    let y: Vec<f64> = pathsets
        .iter()
        .map(|p| oracle.pathset_perf(&[], p))
        .collect();
    let ls = loss_infer(g, &pathsets, &y);
    println!("2. least-squares loss tomography (assumes neutrality):");
    println!(
        "   residual norm {:.4}  <- no neutral explanation fits (Lemma 1's signal),\n\
         \x20  but the method has no way to interpret it\n",
        ls.residual_norm
    );
    assert!(ls.residual_norm > 0.05);

    // 3. Algorithm 1 turns the inconsistency into a localized verdict.
    let result = identify(g, &oracle, Config::exact());
    println!("3. Algorithm 1 (this paper):");
    for v in &result.verdicts {
        println!(
            "   slice {}: unsolvability {:.4} -> {}",
            v.tau,
            v.unsolvability,
            if v.nonneutral {
                "NON-NEUTRAL"
            } else {
                "consistent"
            }
        );
    }
    assert!(result.nonneutral.iter().any(|s| s.contains(l5)));
    println!("   l5 identified as non-neutral — detection AND localization,");
    println!("   with no knowledge of the differentiation criteria.");

    // Bonus: the pathset correlations that make it work (§3.3, observable
    // violation #2): p3 and p4 congest *together*.
    let (p3, p4) = (PathId(2), PathId(3));
    let y3 = oracle.pathset_perf(&[], &netneutrality::topology::PathSet::single(p3));
    let y34 = oracle.pathset_perf(&[], &netneutrality::topology::PathSet::pair(p3, p4));
    println!(
        "\nthe giveaway correlation: y({{p3}}) = {y3:.3} equals y({{p3,p4}}) = {y34:.3}\n\
         — the throttled paths always congest in the same intervals."
    );
}
