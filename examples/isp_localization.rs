//! Multi-ISP localization: the topology B scenario (§6.4), self-contained.
//!
//! A tier-1 backbone polices internal long flows (l5) and two tier-2
//! ingresses police video/P2P traffic entering the backbone (l14, l20).
//! Measured paths cross several administrative domains, so no single
//! party can be blamed a priori — the algorithm localizes each violation
//! to a link sequence using only end-to-end observations.
//!
//! Run with: `cargo run --release --example isp_localization -- [duration-secs]`

use netneutrality::core::{evaluate, identify, Config};
use netneutrality::emu::{
    background_route, link_params, long_flow, measured_routes, policer_at_fraction, short_flow_mix,
    CcKind, RouteId, SimConfig, Simulator, SizeDist, TrafficSpec,
};
use netneutrality::measure::{MeasuredObservations, NormalizeConfig};
use netneutrality::topology::library::topology_b;

fn main() {
    let duration: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300.0);
    let paper = topology_b();
    let g = &paper.topology;

    // Three policers, one per administrative domain, throttling the
    // long-flow class to 20% of capacity (bursts differ per device).
    let bursts = [0.025, 0.03, 0.035];
    let mechanisms: Vec<_> = paper
        .nonneutral_links
        .iter()
        .zip(bursts)
        .map(|(&l, b)| policer_at_fraction(g, l, 1, 0.2, b))
        .collect();

    let cfg = SimConfig {
        duration_s: duration,
        seed: 7,
        ..SimConfig::default()
    };
    let mut routes = measured_routes(g);
    let ln = |n: &str| g.link_by_name(n).unwrap();
    let bg = RouteId(routes.len() as u32);
    routes.push(background_route(vec![ln("l21"), ln("l13"), ln("l17")]));
    let mut sim = Simulator::new(link_params(g, &mechanisms), routes, g.path_count(), 2, cfg);

    // Short-flow customers (class 1), long-flow customers (class 2, policed),
    // plus unmeasured background load on the neutral l13.
    for &p in &paper.classes[0] {
        for spec in short_flow_mix(RouteId(p.index() as u32), 0, CcKind::Cubic) {
            sim.add_traffic(spec);
        }
    }
    for &p in &paper.classes[1] {
        sim.add_traffic(long_flow(RouteId(p.index() as u32), 1, CcKind::Cubic));
        sim.add_traffic(TrafficSpec {
            route: RouteId(p.index() as u32),
            class: 1,
            cc: CcKind::Cubic.into(),
            size: SizeDist::ParetoMean {
                mean_bytes: 40e6 / 8.0,
                shape: 1.5,
            },
            mean_gap_s: 2.0,
            parallel: 3,
        });
    }
    for spec in short_flow_mix(bg, 0, CcKind::Cubic) {
        sim.add_traffic(spec);
    }
    sim.add_traffic(long_flow(bg, 1, CcKind::Cubic));

    println!("emulating {duration} s across 24 links, 15 measured paths ...");
    let report = sim.run();
    println!(
        "  {} segments sent, {} dropped",
        report.segments_sent, report.segments_dropped
    );

    let obs = MeasuredObservations::new(&report.log, NormalizeConfig::default());
    let result = identify(g, &obs, Config::clustered());

    println!("\nidentified non-neutral link sequences:");
    for seq in &result.nonneutral {
        let names: Vec<String> = seq
            .links()
            .iter()
            .map(|&l| g.link(l).name.clone())
            .collect();
        let domains: Vec<&str> = seq
            .links()
            .iter()
            .map(|&l| match g.link(l).name.as_str() {
                "l5" => "tier-1 backbone",
                "l14" | "l20" => "tier-2 ingress",
                _ => "transit",
            })
            .collect();
        println!(
            "  ⟨{}⟩  (domains: {})",
            names.join(", "),
            domains.join(", ")
        );
    }

    let q = evaluate(g, &result.nonneutral, &paper.nonneutral_links);
    println!(
        "\nvs ground truth (policers on l5, l14, l20): FN {:.0}%, FP {:.0}%, granularity {:.1}",
        100.0 * q.false_negative_rate,
        100.0 * q.false_positive_rate,
        q.granularity
    );
    assert_eq!(
        q.false_positive_rate, 0.0,
        "no neutral domain may be accused"
    );
    println!("\nno falsely accused domains; violations localized across ISP boundaries.");
}
