//! End-to-end scenario: an ISP throttles one customer class on a shared
//! bottleneck, and a coalition of end-hosts detects it from their own
//! traffic — the paper's §1 motivation and §6.3 experiment, in miniature.
//!
//! The pipeline is the real one: packet-level emulation (TCP flows through
//! a token-bucket policer) → per-interval loss measurement at the end-hosts
//! → Algorithm 2 normalization → Algorithm 1 verdict.
//!
//! Run with: `cargo run --release --example throttling_detection`

use netneutrality::core::{identify, Config};
use netneutrality::emu::{
    link_params, measured_routes, policer_at_fraction, CcKind, RouteId, SimConfig, Simulator,
    SizeDist, TrafficSpec,
};
use netneutrality::measure::{MeasuredObservations, NormalizeConfig};
use netneutrality::topology::library::topology_a;

fn main() {
    // Topology A: four sources, four sinks, one 100 Mb/s shared link l5.
    // The ISP polices "bulk transfer" customers (paths p3, p4) to 20% of
    // capacity; interactive customers (p1, p2) are untouched.
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").expect("topology A has l5");
    let mechanisms = vec![policer_at_fraction(g, l5, 1, 0.2, 0.01)];

    let cfg = SimConfig {
        duration_s: 60.0,
        seed: 2024,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(link_params(g, &mechanisms), measured_routes(g), 4, 2, cfg);
    for path in g.path_ids() {
        let bulk = paper.classes[1].contains(&path);
        sim.add_traffic(TrafficSpec {
            route: RouteId(path.index() as u32),
            class: bulk as u8,
            cc: CcKind::Cubic.into(),
            size: SizeDist::ParetoMean {
                mean_bytes: 10e6 / 8.0,
                shape: 1.5,
            },
            mean_gap_s: 10.0,
            parallel: 20,
        });
    }

    println!("emulating 60 s of traffic through the policed bottleneck ...");
    let report = sim.run();
    println!(
        "  {} segments sent, {} dropped ({:.1}%)",
        report.segments_sent,
        report.segments_dropped,
        100.0 * report.segments_dropped as f64 / report.segments_sent as f64
    );

    // What each end-host sees: its own per-path congestion frequency.
    println!("\nper-path congestion probability (what end-hosts observe):");
    for path in g.path_ids() {
        let p = report.log.congestion_probability(path, 0.01);
        let class = if paper.classes[1].contains(&path) {
            "bulk "
        } else {
            "inter"
        };
        println!("  {} [{}]: {:5.1}%", g.path(path).name(), class, 100.0 * p);
    }

    // The coalition pools its measurements and runs the inference.
    let obs = MeasuredObservations::new(&report.log, NormalizeConfig::default());
    let result = identify(g, &obs, Config::clustered());

    println!("\ninference verdict:");
    if result.network_is_nonneutral() {
        for seq in &result.nonneutral {
            let names: Vec<String> = seq
                .links()
                .iter()
                .map(|&l| g.link(l).name.clone())
                .collect();
            println!("  NON-NEUTRAL link sequence: ⟨{}⟩", names.join(", "));
        }
    } else {
        println!("  network appears neutral");
    }

    assert!(
        result.network_is_nonneutral(),
        "the throttling must be detected"
    );
    assert!(
        result.nonneutral.iter().any(|s| s.contains(l5)),
        "the violation must be localized to the shared link"
    );
    println!("\nthe ISP's policer on l5 was detected and localized — without any");
    println!("knowledge of which customers were being differentiated against.");
}
