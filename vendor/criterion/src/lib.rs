//! Offline shim for the `criterion` crate: the subset of the 0.5 API this
//! workspace's benches use.
//!
//! Measurement model: each benchmark runs one unmeasured calibration call,
//! then batches of iterations until a wall-clock target is reached. The
//! reported mean, median, and p95 per iteration are order statistics over
//! the per-batch means with two rejection steps applied first: the first
//! measured batch is discarded as warm-up (caches, frequency scaling), and
//! the single fastest and slowest batches are trimmed as outliers when
//! enough batches remain (so a scheduler hiccup cannot masquerade as a
//! regression). There is no further statistical analysis, no report
//! directory, and no plotting — this shim exists so `cargo bench` produces
//! honest comparative numbers with zero dependencies. Passing `--test` (as
//! `cargo test --benches` does) runs every closure exactly once, so bench
//! binaries stay cheap in test mode.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark identifier.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Drives the timing loop for one benchmark.
pub struct Bencher<'a> {
    mode: Mode,
    /// Wall-clock budget for the measurement phase.
    target: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full timing loop (`cargo bench`).
    Measure,
    /// One iteration per closure (`cargo test --benches` passes `--test`).
    Test,
}

#[derive(Debug, Clone)]
struct Sample {
    mean: Duration,
    median: Duration,
    p95: Duration,
    iters: u64,
}

/// Minimum batch count at which the top/bottom outlier batches are trimmed
/// (below this, trimming would eat too large a fraction of the data).
const MIN_BATCHES_FOR_TRIM: usize = 5;

impl Sample {
    /// Order statistics over per-batch means, after warm-up discard and
    /// outlier trimming (see the crate docs). `batch_iters` is the number
    /// of iterations every batch ran; `iters` reports only iterations that
    /// contributed to the statistics.
    fn from_batches(mut batch_means: Vec<Duration>, batch_iters: u64) -> Sample {
        // Discard the first measured batch as warm-up when others exist.
        if batch_means.len() > 1 {
            batch_means.remove(0);
        }
        batch_means.sort_unstable();
        // Trim the single slowest and fastest batch as outliers.
        if batch_means.len() >= MIN_BATCHES_FOR_TRIM {
            batch_means.pop();
            batch_means.remove(0);
        }
        let n = batch_means.len().max(1) as u32;
        let total: Duration = batch_means.iter().sum();
        Sample {
            mean: total / n,
            median: percentile(&batch_means, 0.50),
            p95: percentile(&batch_means, 0.95),
            iters: batch_means.len() as u64 * batch_iters,
        }
    }

    fn test_mode() -> Sample {
        Sample {
            mean: Duration::ZERO,
            median: Duration::ZERO,
            p95: Duration::ZERO,
            iters: 1,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            *self.result = Some(Sample::test_mode());
            return;
        }
        // One unmeasured call calibrates the batch size.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let batch = ((self.target.as_nanos() / 10 / first.as_nanos()).clamp(1, 10_000)) as u64;

        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch_means = Vec::new();
        while elapsed < self.target && iters < 1_000_000 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let batch_elapsed = t.elapsed();
            batch_means.push(batch_elapsed / batch as u32);
            elapsed += batch_elapsed;
            iters += batch;
        }
        *self.result = Some(Sample::from_batches(batch_means, batch));
    }
}

/// Entry point handed to every `criterion_group!` target.
pub struct Criterion {
    mode: Mode,
    target: Duration,
    /// Substring filters from the CLI (positional args); a benchmark runs
    /// if it matches *any* of them, like real criterion's single filter.
    filters: Vec<String>,
}

/// Libtest/criterion flags that consume the following argument, so their
/// value must not be mistaken for a positional benchmark-name filter.
const VALUE_FLAGS: &[&str] = &[
    "--test-threads",
    "--skip",
    "--logfile",
    "--color",
    "--format",
];

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                s if VALUE_FLAGS.contains(&s) => {
                    // Skip the flag's value (`--flag=value` forms fall
                    // through to the catch-all arm below instead).
                    let _ = args.next();
                }
                // Any other flag cargo/libtest may pass: accept and ignore.
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion {
            mode,
            target: Duration::from_millis(300),
            filters,
        }
    }
}

impl Criterion {
    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(mut self, target: Duration) -> Self {
        self.target = target;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, target: Duration, mut f: F) {
        if !self.filters.is_empty() && !self.filters.iter().any(|f| id.contains(f.as_str())) {
            return;
        }
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            target,
            result: &mut result,
        };
        f(&mut b);
        match result {
            Some(s) if self.mode == Mode::Measure => {
                println!(
                    "{id:<50} mean {:>11}  median {:>11}  p95 {:>11} ({} iterations)",
                    format_duration(s.mean),
                    format_duration(s.median),
                    format_duration(s.p95),
                    s.iters
                );
            }
            Some(_) => println!("{id:<50} ok (test mode)"),
            None => println!("{id:<50} skipped (no iter call)"),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let target = self.target;
        self.run_one(id, target, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        // The group inherits the current budget; `BenchmarkGroup::
        // measurement_time` overrides it for this group only (upstream
        // scopes the setting the same way).
        let target = self.target;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            target,
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks (`c.benchmark_group(..)`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// This group's measurement budget (scoped: does not leak into later
    /// groups or `bench_function` calls on the parent `Criterion`).
    target: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's timing loop is wall-clock
    /// bounded, so the sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock measurement budget for this group only.
    pub fn measurement_time(&mut self, target: Duration) -> &mut Self {
        self.target = target;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, self.target, f);
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, self.target, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring upstream's simple
/// form: `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_sample() {
        let mut result = None;
        let mut b = Bencher {
            mode: Mode::Measure,
            target: Duration::from_millis(5),
            result: &mut result,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        let s = result.expect("sample recorded");
        assert!(s.iters >= 1);
        assert!(
            count > s.iters,
            "calibration, warm-up, and trimmed batches run but are not counted"
        );
        // The order statistics come from the same batches the mean does.
        assert!(s.median <= s.p95, "median cannot exceed p95");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=10).map(ms).collect();
        assert_eq!(percentile(&sorted, 0.50), ms(5));
        assert_eq!(percentile(&sorted, 0.95), ms(10));
        assert_eq!(percentile(&sorted, 1.0), ms(10));
        assert_eq!(percentile(&sorted[..1], 0.95), ms(1));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn sample_statistics_over_batches() {
        let ms = |n: u64| Duration::from_millis(n);
        // A slow warm-up batch, eight 2 ms batches, and a 100 ms scheduler
        // outlier: warm-up discard drops the 50, trimming drops the 100 and
        // one of the 2s — every statistic lands on 2 ms.
        let mut batches = vec![ms(50)];
        batches.extend(vec![ms(2); 8]);
        batches.push(ms(100));
        let s = Sample::from_batches(batches, 10);
        assert_eq!(s.mean, ms(2));
        assert_eq!(s.median, ms(2));
        assert_eq!(s.p95, ms(2));
        // 10 batches - warmup - 2 trimmed = 7 counted, 10 iters each.
        assert_eq!(s.iters, 70);
    }

    #[test]
    fn warmup_batch_is_discarded() {
        let ms = |n: u64| Duration::from_millis(n);
        // Below the trim threshold: only the warm-up discard applies, so a
        // slow first batch cannot drag the mean.
        let s = Sample::from_batches(vec![ms(90), ms(3), ms(5)], 1);
        assert_eq!(s.mean, ms(4));
        assert_eq!(s.median, ms(3));
        assert_eq!(s.p95, ms(5));
        assert_eq!(s.iters, 2);
    }

    #[test]
    fn outliers_trimmed_from_both_ends() {
        let ms = |n: u64| Duration::from_millis(n);
        // After warm-up discard: [1, 10, 10, 10, 10, 200] -> trim the 1 and
        // the 200 -> all tens.
        let batches = vec![ms(7), ms(1), ms(10), ms(10), ms(200), ms(10), ms(10)];
        let s = Sample::from_batches(batches, 2);
        assert_eq!(s.mean, ms(10));
        assert_eq!(s.median, ms(10));
        assert_eq!(s.p95, ms(10));
        assert_eq!(s.iters, 8);
    }

    #[test]
    fn single_batch_survives_untrimmed() {
        let ms = |n: u64| Duration::from_millis(n);
        let s = Sample::from_batches(vec![ms(4)], 3);
        assert_eq!(s.mean, ms(4));
        assert_eq!(s.median, ms(4));
        assert_eq!(s.iters, 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut result = None;
        let mut b = Bencher {
            mode: Mode::Test,
            target: Duration::from_millis(5),
            result: &mut result,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(result.unwrap().iters, 1);
    }

    #[test]
    fn group_measurement_time_is_scoped_to_the_group() {
        let mut c = Criterion {
            mode: Mode::Test,
            target: Duration::from_millis(300),
            filters: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("g");
            g.measurement_time(Duration::from_secs(10));
            assert_eq!(g.target, Duration::from_secs(10));
            g.bench_function("noop", |b| b.iter(|| 1));
        }
        // The override must not leak back into the parent Criterion.
        assert_eq!(c.target, Duration::from_millis(300));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
        assert_eq!(BenchmarkId::new("rank", 8).id, "rank/8");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
