//! Offline shim for the `rand` crate: the subset of the 0.8 API this
//! workspace uses, backed by a xoshiro256++ generator.
//!
//! Semantics mirror `rand 0.8` where they matter to callers: `StdRng` is
//! seedable via [`SeedableRng::seed_from_u64`] (SplitMix64 seed expansion,
//! the same scheme `rand` uses for non-crypto seeding) and every generator
//! is fully deterministic given its seed. The *stream* of values differs
//! from upstream `StdRng` (which is ChaCha12), which is fine here: all
//! in-tree consumers treat the RNG as an arbitrary reproducible source.

/// A source of random 32/64-bit values.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    ///
    /// [`Standard`]: distributions::Standard
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `[low, high)` (or `[low, high]` for `..=`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matches the scheme
    /// upstream `rand` documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xD1B5_4A32_D192_ED03,
                    0x8CB9_2BA7_2F3D_8DD7,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform `[0, 1)` for floats,
    /// uniform over the full range for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        use super::super::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// A range that can be sampled from directly (`rng.gen_range(a..b)`).
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = ((rng.next_u64() as u128) % span) as i128;
                        (self.start as i128 + v) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = ((rng.next_u64() as u128) % span) as i128;
                        (lo as i128 + v) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        self.start + (self.end - self.start) * u as $t
                    }
                }
            )*};
        }
        impl_float_range!(f32, f64);
    }
}

pub use distributions::{Distribution, Standard};

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits} far from 2500");
    }
}
