//! Offline shim for the `proptest` crate: the subset of the 1.x API this
//! workspace uses.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the test name and case
//!   index; the RNG seed is derived deterministically from the test name, so
//!   every failure reproduces exactly under `cargo test`.
//! * **No persistence / no env knobs.** `PROPTEST_CASES` etc. are ignored;
//!   the case count comes from [`ProptestConfig`](test_runner::ProptestConfig) alone.
//!
//! The [`Strategy`](strategy::Strategy) trait here is generation-only (`generate`), not the
//! upstream `ValueTree` machinery, but the combinator surface
//! (`prop_map`, `prop_flat_map`, `prop_filter`, ranges, tuples,
//! [`collection::vec`], [`bool::ANY`], [`sample::select`], [`Just`](strategy::Just)) matches
//! upstream closely enough that in-tree tests compile unchanged.

pub mod test_runner {
    use std::cell::Cell;

    thread_local! {
        /// Active `max_global_rejects` for the proptest running on this
        /// thread (each `#[test]` runs on its own thread, so tests never
        /// see each other's setting).
        static MAX_REJECTS: Cell<u32> = const { Cell::new(65_536) };
    }

    /// Installs a config's reject budget for the current test thread.
    /// Called by the `proptest!` macro; not part of the upstream API.
    #[doc(hidden)]
    pub fn set_max_rejects(n: u32) {
        MAX_REJECTS.with(|c| c.set(n));
    }

    /// The reject budget installed for the current test thread.
    pub(crate) fn max_rejects() -> u32 {
        MAX_REJECTS.with(|c| c.get())
    }

    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Upper bound on attempts to satisfy `prop_filter` per case.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Deterministic generator (xoshiro256++) seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test's name): same name,
        /// same sequence, every run — failures are always reproducible.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, then SplitMix64 expansion into the xoshiro state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Prints a reproduction hint if the current proptest case panics.
    pub struct CaseGuard<'a> {
        pub test_name: &'a str,
        pub case: u32,
        pub done: bool,
    }

    impl Drop for CaseGuard<'_> {
        fn drop(&mut self) {
            if !self.done && std::thread::panicking() {
                eprintln!(
                    "proptest shim: test `{}` failed on case #{} \
                     (deterministic: rerun the test to reproduce)",
                    self.test_name, self.case
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Generation-only (no shrinking); see the crate docs.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap {
                source: self,
                map: f,
            }
        }

        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy (upstream parity helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.source.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) source: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let budget = crate::test_runner::max_rejects();
            for _ in 0..budget {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected {budget} consecutive values: {}",
                self.reason
            );
        }
    }

    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`](fn@vec): an exact length or a range.
    pub trait IntoSizeRange {
        /// Returns `(min, max)`, both inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below(self.max - self.min + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)` — a `Vec` of generated
    /// elements whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fair-coin strategy for `bool` (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len())].clone()
        }
    }

    /// `prop::sample::select(choices)` — uniform choice from a non-empty
    /// vector.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select requires at least one choice");
        Select { choices }
    }
}

/// The body of a `proptest!` block: an optional
/// `#![proptest_config(...)]` followed by ordinary `#[test]` functions
/// whose arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::set_max_rejects(config.max_global_rejects);
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let mut guard = $crate::test_runner::CaseGuard {
                        test_name: stringify!($name),
                        case,
                        done: false,
                    };
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                    guard.done = true;
                }
            }
        )*
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prop` module alias inside the prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..200 {
            let x = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&(-2.5..2.5f64), &mut rng);
            assert!((-2.5..2.5).contains(&y));
            let v = Strategy::generate(&prop::collection::vec(0u8..4, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    #[should_panic(expected = "prop_filter rejected 10 consecutive values")]
    fn filter_respects_configured_reject_budget() {
        crate::test_runner::set_max_rejects(10);
        let s = (0u32..5).prop_filter("impossible predicate", |_| false);
        let mut rng = crate::test_runner::TestRng::from_name("budget");
        let _ = Strategy::generate(&s, &mut rng);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        let s = (0usize..100, prop::bool::ANY);
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            n in 1usize..=5,
            mut v in prop::collection::vec(0.0..1.0f64, 1..8),
            flag in prop::bool::ANY,
        ) {
            v.push(n as f64);
            prop_assert!(v.len() <= 8 + 1, "len {} (flag={flag})", v.len());
        }

        #[test]
        fn flat_map_composes(
            m in (1usize..=3, 1usize..=3).prop_flat_map(|(r, c)| {
                prop::collection::vec(0u8..2, r * c).prop_map(move |d| (r, c, d))
            }),
        ) {
            let (r, c, d) = m;
            prop_assert_eq!(d.len(), r * c);
        }
    }
}
