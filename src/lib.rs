//! # netneutrality
//!
//! A Rust reproduction of **"Network Neutrality Inference"** (Zhiyong Zhang,
//! Ovidiu Mara, Katerina Argyraki — SIGCOMM 2014): detect and localize
//! traffic differentiation from external (end-to-end) observations only.
//!
//! Where classic network tomography *assumes* the network is neutral and
//! forms **solvable** systems `y = A(Θ)·x` to infer link properties, this
//! library hunts for **unsolvable** systems: if observations taken from
//! different vantage points cannot be explained by any per-link performance
//! assignment, some link is treating traffic from different paths
//! differently — and carefully chosen "network slices" localize the
//! violation to specific link sequences.
//!
//! ## Crates
//!
//! | Facade module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `nni-core` | Equivalent neutral networks (§3.2), Theorem 1 observability, slices + System 4 (§4), Algorithm 1 (§5), metrics |
//! | [`topology`] | `nni-topology` | The graph model `G = (V, L, P)` and every paper topology |
//! | [`measure`] | `nni-measure` | Algorithm 2: normalization, loss thresholds, pathset performance numbers |
//! | [`emu`] | `nni-emu` | Deterministic packet-level emulator: drop-tail queues, policers, shapers, NewReno/CUBIC TCP |
//! | [`scenario`] | `nni-scenario` | Topology-agnostic Scenario API: declarative experiments, serial / sharded / process executors, baseline adapters |
//! | [`topogen`] | `nni-topogen` | Seeded ISP-like topology generation (access/aggregation/core tiers), noise models, video/web traffic shapes |
//! | [`service`] | `nni-service` | Distributed execution: `nni-worker` subprocesses, the `nni-serviced` spool daemon, `nni-servicectl` |
//! | [`live`] | `nni-live` | Online inference: `nni-live` tails a growing corpus, re-clustering per closed interval with multi-vantage merge |
//! | [`tomography`] | `nni-tomography` | Related-work baselines (boolean tomography, loss tomography, Glasnost-style) |
//! | [`stats`] | `nni-stats` | Two-cluster classification, five-number summaries, Pareto/exponential samplers |
//! | [`linalg`] | `nni-linalg` | Rank / RREF / least squares for the solvability tests |
//!
//! ## Quickstart
//!
//! ```
//! use netneutrality::core::{
//!     identify, Classes, Config, EquivalentNetwork, ExactOracle, LinkPerf, NetworkPerf,
//! };
//! use netneutrality::topology::library::figure5;
//!
//! // Figure 5 of the paper: shared link l1 congests class-2 traffic with
//! // probability 0.5 while class-1 rides free.
//! let t = figure5();
//! let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
//! let l1 = t.topology.link_by_name("l1").unwrap();
//! let perf = NetworkPerf::congestion_free(&t.topology, 2)
//!     .with_link(l1, LinkPerf::per_class(vec![0.0, (2.0_f64).ln()]));
//!
//! // Exact-mode oracle (ground truth) and Algorithm 1.
//! let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
//! let result = identify(&t.topology, &oracle, Config::exact());
//! assert!(result.network_is_nonneutral());
//! assert!(result.nonneutral[0].contains(l1));
//! ```
//!
//! See `examples/` for end-to-end scenarios with the packet-level emulator,
//! and `crates/bench/src/bin/` for the regenerators of every table and
//! figure of the paper.

pub use nni_core as core;
pub use nni_emu as emu;
pub use nni_linalg as linalg;
pub use nni_live as live;
pub use nni_measure as measure;
pub use nni_scenario as scenario;
pub use nni_service as service;
pub use nni_stats as stats;
pub use nni_tomography as tomography;
pub use nni_topogen as topogen;
pub use nni_topology as topology;
